//===- Threading.cpp -------------------------------------------------===//

#include "support/Threading.h"

#include "support/Metrics.h"
#include "support/Statistic.h"
#include "support/Timing.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

using namespace irdl;

IRDL_STATISTIC(Threading, NumParallelLoops,
               "parallelFor loops dispatched to the thread pool");
IRDL_STATISTIC(Threading, NumInlineLoops,
               "parallelFor loops executed inline (mt disabled or nested)");
IRDL_STATISTIC(Threading, NumParallelTasks,
               "individual indices executed on pool workers");

namespace {
/// Pool telemetry series, recorded only while metricsEnabled().
struct PoolMetrics {
  Gauge &QueueDepth;
  Counter &Tasks;
  Counter &BusyNs;

  static PoolMetrics &get() {
    static PoolMetrics M{
        MetricsRegistry::instance().getGauge(
            "irdl_threadpool_queue_depth",
            "tasks submitted to the pool but not yet started"),
        MetricsRegistry::instance().getCounter(
            "irdl_threadpool_tasks_total", "tasks executed by pool workers"),
        MetricsRegistry::instance().getCounter(
            "irdl_threadpool_busy_ns_total",
            "cumulative nanoseconds pool workers spent running tasks")};
    return M;
  }
};
} // namespace

//===----------------------------------------------------------------------===//
// Global configuration
//===----------------------------------------------------------------------===//

namespace {
/// 0 = auto (env, then hardware). Explicit setGlobalThreadCount overrides.
std::atomic<unsigned> ConfiguredThreads{0};

std::mutex GlobalPoolMu;
std::shared_ptr<ThreadPool> GlobalPool;  // sized for the resolved count
unsigned GlobalPoolSize = 0;

thread_local bool InPoolWorker = false;

unsigned hardwareThreads() {
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

/// The IRDL_NUM_THREADS environment override, read once.
unsigned envThreads() {
  static unsigned Cached = [] {
    const char *Env = std::getenv("IRDL_NUM_THREADS");
    if (!Env || !*Env)
      return 0u;
    char *End = nullptr;
    unsigned long V = std::strtoul(Env, &End, 10);
    if (End == Env || *End)
      return 0u;
    return (unsigned)V;
  }();
  return Cached;
}
} // namespace

void irdl::setGlobalThreadCount(unsigned N) {
  ConfiguredThreads.store(N, std::memory_order_relaxed);
  // Drop the pool so the next loop rebuilds it at the new size. In-flight
  // loops keep the old pool alive through their shared_ptr.
  std::lock_guard<std::mutex> Lock(GlobalPoolMu);
  GlobalPool.reset();
  GlobalPoolSize = 0;
}

unsigned irdl::getGlobalThreadCount() {
  unsigned N = ConfiguredThreads.load(std::memory_order_relaxed);
  if (N == 0)
    N = envThreads();
  if (N == 0)
    N = hardwareThreads();
  return N;
}

bool irdl::isMultithreadingEnabled() { return getGlobalThreadCount() > 1; }

std::optional<unsigned>
irdl::parseThreadCountValue(std::string_view Value) {
  if (Value.empty())
    return std::nullopt;
  unsigned Result = 0;
  for (char C : Value) {
    if (C < '0' || C > '9')
      return std::nullopt;
    Result = Result * 10 + (unsigned)(C - '0');
  }
  return Result;
}

bool irdl::isThreadPoolWorker() { return InPoolWorker; }

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  if (metricsEnabled())
    PoolMetrics::get().QueueDepth.inc();
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Task));
  }
  QueueCv.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  IdleCv.wait(Lock, [this] { return Queue.empty() && NumRunning == 0; });
}

void ThreadPool::workerLoop() {
  InPoolWorker = true;
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty())
      break; // Stopping, queue drained
    std::function<void()> Task = std::move(Queue.front());
    Queue.pop_front();
    ++NumRunning;
    Lock.unlock();
    if (metricsEnabled()) {
      PoolMetrics &M = PoolMetrics::get();
      M.QueueDepth.dec();
      M.Tasks.inc();
      uint64_t Begin = steadyNowNs();
      Task();
      M.BusyNs.inc(steadyNowNs() - Begin);
    } else {
      Task();
    }
    Lock.lock();
    --NumRunning;
    if (Queue.empty() && NumRunning == 0)
      IdleCv.notify_all();
  }
}

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

namespace {
/// Returns the pool for the current resolved thread count, (re)building
/// it when the configuration changed.
std::shared_ptr<ThreadPool> acquireGlobalPool(unsigned Threads) {
  std::lock_guard<std::mutex> Lock(GlobalPoolMu);
  if (!GlobalPool || GlobalPoolSize != Threads) {
    GlobalPool = std::make_shared<ThreadPool>(Threads);
    GlobalPoolSize = Threads;
  }
  return GlobalPool;
}

/// Shared completion state of one parallelFor. Kept alive by shared_ptr:
/// a worker can still be exiting its drain loop after the submitter saw
/// Done == N and returned.
struct LoopState {
  explicit LoopState(size_t N, const std::function<void(size_t)> &Fn)
      : N(N), Fn(Fn) {}
  const size_t N;
  const std::function<void(size_t)> &Fn;
  std::atomic<size_t> Next{0};
  std::atomic<size_t> Done{0};
  /// Pool jobs that have fully finished (including their timer-frame
  /// teardown). The submitter waits on this too: returning while a
  /// worker is still popping its frame would let the caller destroy the
  /// TimerGroup (or the loop body) under the worker's feet.
  std::atomic<unsigned> JobsDone{0};
  unsigned NumJobs = 0;
  std::mutex DoneMu;
  std::condition_variable DoneCv;

  bool finished() const {
    return Done.load(std::memory_order_acquire) == N &&
           JobsDone.load(std::memory_order_acquire) == NumJobs;
  }

  void notifyDone() {
    std::lock_guard<std::mutex> Lock(DoneMu);
    DoneCv.notify_all();
  }

  /// Claims and runs indices until the range is exhausted.
  void drain() {
    while (true) {
      size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= N)
        break;
      Fn(I);
      ++NumParallelTasks;
      if (Done.fetch_add(1, std::memory_order_acq_rel) + 1 == N)
        notifyDone();
    }
  }
};
} // namespace

void irdl::detail::parallelForImpl(size_t N,
                                   const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  unsigned Threads = getGlobalThreadCount();
  // Inline execution: multithreading off, a degenerate range, or a nested
  // loop on a pool worker (waiting on the pool from a pool thread could
  // deadlock, and the outer loop already owns the parallelism).
  if (Threads <= 1 || N == 1 || isThreadPoolWorker()) {
    ++NumInlineLoops;
    for (size_t I = 0; I != N; ++I)
      Fn(I);
    return;
  }
  ++NumParallelLoops;

  std::shared_ptr<ThreadPool> Pool = acquireGlobalPool(Threads);
  auto State = std::make_shared<LoopState>(N, Fn);

  // Merge worker-side TimingScopes into the submitting thread's tree
  // position (per-thread timers, one tree: docs/observability.md).
  TimerGroup *Group = getActiveTimerGroup();
  TimerGroup::Node *Cursor = Group ? Group->currentThreadNode() : nullptr;

  State->NumJobs =
      (unsigned)std::min<size_t>(N - 1, Pool->getNumThreads());
  for (unsigned I = 0; I != State->NumJobs; ++I)
    Pool->submit([State, Group, Cursor] {
      if (Group && Cursor)
        Group->pushThreadFrame(Cursor);
      State->drain();
      if (Group && Cursor)
        Group->popThreadFrame();
      if (State->JobsDone.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          State->NumJobs)
        State->notifyDone();
    });

  // The submitting thread participates instead of blocking idle, then
  // waits for every job to wind down (not just for the last index): the
  // loop body and the active TimerGroup may die with this frame.
  State->drain();
  std::unique_lock<std::mutex> Lock(State->DoneMu);
  State->DoneCv.wait(Lock, [&] { return State->finished(); });
}
