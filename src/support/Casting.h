//===- Casting.h - LLVM-style isa/cast/dyn_cast ----------------*- C++ -*-===//
//
// Part of the IRDL reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal reimplementation of LLVM's opt-in RTTI templates. A class
/// hierarchy participates by providing a static `classof(const Base *)`
/// predicate on each derived class; `isa`, `cast`, and `dyn_cast` then work
/// exactly like their LLVM counterparts, with no v-table requirement.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_CASTING_H
#define IRDL_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace irdl {

/// Returns true if \p Val is an instance of any of the \p To types.
template <typename To, typename... Tos, typename From>
bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  if constexpr (std::is_base_of_v<To, From>)
    return true;
  else if (To::classof(Val))
    return true;
  if constexpr (sizeof...(Tos) > 0)
    return isa<Tos...>(Val);
  else
    return false;
}

/// Returns true if \p Val is an instance of any of the \p To types, or false
/// when \p Val is null.
template <typename To, typename... Tos, typename From>
bool isa_and_present(const From *Val) {
  return Val && isa<To, Tos...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From>
To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast for const pointers.
template <typename To, typename From>
const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null if \p Val is not a \p To.
template <typename To, typename From>
To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast for const pointers.
template <typename To, typename From>
const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast, but tolerates a null input (propagating it).
template <typename To, typename From>
To *dyn_cast_if_present(From *Val) {
  return isa_and_present<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

} // namespace irdl

#endif // IRDL_SUPPORT_CASTING_H
