//===- Signal.h - Flush-on-interrupt signal handlers -------------*- C++ -*-===//
///
/// \file
/// SIGINT/SIGTERM handling for the drivers: a one-shot interrupt handler
/// that either flushes report artifacts (--metrics-json/--trace-json)
/// before exiting with the conventional 128+signo status, or notifies a
/// long-lived server loop to wind down gracefully. The drivers are
/// synchronous tools, so running the flush callback from the handler is
/// the pragmatic choice: the alternative (dropping the artifacts a CI job
/// is about to collect) is strictly worse. Notify callbacks, in contrast,
/// must stick to async-signal-safe work (atomic stores, closing an fd,
/// writing a self-pipe).
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_SIGNAL_H
#define IRDL_SUPPORT_SIGNAL_H

#include <functional>

namespace irdl {

/// Installs a SIGINT/SIGTERM handler that invokes \p Flush once (a second
/// signal during the flush exits immediately) and then _exits with
/// 128+signo. Replaces any previously installed irdl handler.
void installExitFlushHandler(std::function<void()> Flush);

/// Installs a SIGINT/SIGTERM handler that invokes \p Notify and returns,
/// leaving process shutdown to the normal control flow (the server's
/// accept loop observing its stop flag). \p Notify runs in signal context
/// and must only do async-signal-safe work. A second signal while a
/// previous notification is still pending exits immediately (escape hatch
/// for a hung shutdown).
void installStopNotifyHandler(std::function<void()> Notify);

} // namespace irdl

#endif // IRDL_SUPPORT_SIGNAL_H
