//===- SourceMgr.cpp ------------------------------------------------===//

#include "support/SourceMgr.h"

using namespace irdl;

unsigned SourceMgr::addBuffer(std::string Contents, std::string Name) {
  auto Buf = std::make_unique<Buffer>();
  Buf->Contents = std::move(Contents);
  Buf->Name = std::move(Name);
  Buffers.push_back(std::move(Buf));
  return Buffers.size();
}

unsigned SourceMgr::findBufferContaining(SMLoc Loc) const {
  if (!Loc.isValid())
    return 0;
  const char *Ptr = Loc.getPointer();
  for (unsigned I = 0, E = Buffers.size(); I != E; ++I) {
    const std::string &Contents = Buffers[I]->Contents;
    // The one-past-the-end position is a valid location (EOF diagnostics).
    if (Ptr >= Contents.data() && Ptr <= Contents.data() + Contents.size())
      return I + 1;
  }
  return 0;
}

SMLineAndColumn SourceMgr::getLineAndColumn(SMLoc Loc) const {
  SMLineAndColumn Result;
  unsigned Id = findBufferContaining(Loc);
  if (Id == 0)
    return Result;

  std::string_view Contents = getBufferContents(Id);
  const char *Ptr = Loc.getPointer();
  size_t Offset = Ptr - Contents.data();

  unsigned Line = 1;
  size_t LineStart = 0;
  for (size_t I = 0; I < Offset; ++I) {
    if (Contents[I] == '\n') {
      ++Line;
      LineStart = I + 1;
    }
  }
  size_t LineEnd = Contents.find('\n', LineStart);
  if (LineEnd == std::string_view::npos)
    LineEnd = Contents.size();

  Result.BufferName = getBufferName(Id);
  Result.Line = Line;
  Result.Column = static_cast<unsigned>(Offset - LineStart) + 1;
  Result.LineText = Contents.substr(LineStart, LineEnd - LineStart);
  return Result;
}
