//===- Socket.h - Unix-domain socket utilities -------------------*- C++ -*-===//
///
/// \file
/// Thin RAII wrappers over unix-domain stream sockets for the
/// verification service (src/server): create/bind/listen, connect, and
/// EINTR-safe full-buffer send/receive. Everything reports errors as
/// strings instead of errno so callers can surface them through the
/// DiagnosticEngine. See docs/serving.md.
///
//===----------------------------------------------------------------------===//

#ifndef IRDL_SUPPORT_SOCKET_H
#define IRDL_SUPPORT_SOCKET_H

#include <cstddef>
#include <string>
#include <string_view>

namespace irdl {

/// Owns one file descriptor; closes it on destruction. Movable, not
/// copyable.
class FileDescriptor {
public:
  FileDescriptor() = default;
  explicit FileDescriptor(int Fd) : Fd(Fd) {}
  FileDescriptor(FileDescriptor &&Other) : Fd(Other.release()) {}
  FileDescriptor &operator=(FileDescriptor &&Other) {
    reset();
    Fd = Other.release();
    return *this;
  }
  FileDescriptor(const FileDescriptor &) = delete;
  FileDescriptor &operator=(const FileDescriptor &) = delete;
  ~FileDescriptor() { reset(); }

  bool isValid() const { return Fd >= 0; }
  int get() const { return Fd; }

  int release() {
    int Result = Fd;
    Fd = -1;
    return Result;
  }

  void reset();

private:
  int Fd = -1;
};

/// Creates a unix-domain stream socket listening on \p Path. An existing
/// socket file at \p Path is unlinked first (the conventional daemon
/// restart behavior). Returns an invalid descriptor and fills \p Error on
/// failure.
FileDescriptor listenUnixSocket(const std::string &Path, std::string &Error,
                                int Backlog = 64);

/// Connects to the unix-domain socket at \p Path.
FileDescriptor connectUnixSocket(const std::string &Path,
                                 std::string &Error);

/// Accepts one connection from \p ListenFd. Returns an invalid descriptor
/// on failure (including when the listening socket was closed or shut
/// down by another thread, the server's stop path).
FileDescriptor acceptConnection(int ListenFd);

/// Writes all \p Data.size() bytes, retrying on EINTR and short writes.
bool sendAll(int Fd, std::string_view Data);

/// Reads exactly \p N bytes into \p Out (resized to \p N). Returns false
/// on EOF or error; \p Out is then partial. An EOF before the first byte
/// sets \p CleanEof (when given), letting callers distinguish an orderly
/// disconnect from a mid-message truncation.
bool recvAll(int Fd, size_t N, std::string &Out, bool *CleanEof = nullptr);

} // namespace irdl

#endif // IRDL_SUPPORT_SOCKET_H
