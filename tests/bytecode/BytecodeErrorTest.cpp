//===- BytecodeErrorTest.cpp - Corrupt/truncated bytecode handling ------===//
///
/// The reader's failure contract: every malformed buffer — wrong magic,
/// unsupported version, truncation at any offset, out-of-range indices,
/// trailing garbage — produces a structured diagnostic and failure(),
/// never a crash or a silently wrong module.

#include "bytecode/Bytecode.h"

#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

/// A valid buffer holding the cmath dialect spec plus a small module.
std::string makeValidBuffer() {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                 "/cmath.irdl",
                        SrcMgr, Diags);
  EXPECT_NE(M, nullptr) << Diags.renderAll();
  OwningOpRef IR = parseSourceString(Ctx, R"(
    std.func @f(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>)
        -> f32 {
      %m = cmath.mul %p, %q : f32
      %n = cmath.norm %m : f32
      std.return %n : f32
    }
  )",
                                     SrcMgr, Diags);
  EXPECT_TRUE(IR) << Diags.renderAll();
  BytecodeWriter Writer;
  Writer.addModuleSpecs(*M);
  Writer.setModule(IR.get());
  return Writer.write();
}

/// Reads \p Buffer into a fresh context; returns true iff read succeeded.
bool tryRead(const std::string &Buffer, std::string *RenderedDiags,
             BytecodeReadResult *Out = nullptr) {
  IRContext Ctx;
  DiagnosticEngine Diags;
  BytecodeReader Reader(Ctx, Diags);
  BytecodeReadResult Result;
  bool Ok = succeeded(Reader.read(Buffer, Result));
  if (RenderedDiags)
    *RenderedDiags = Diags.renderAll();
  if (Out)
    *Out = std::move(Result);
  return Ok;
}

TEST(BytecodeError, MagicSniffing) {
  EXPECT_TRUE(isBytecodeBuffer(makeValidBuffer()));
  EXPECT_FALSE(isBytecodeBuffer(""));
  EXPECT_FALSE(isBytecodeBuffer("IRB"));
  EXPECT_FALSE(isBytecodeBuffer("builtin.module {}"));
  EXPECT_FALSE(isBytecodeBuffer("JRBC junk"));
}

TEST(BytecodeError, EmptyBuffer) {
  std::string Rendered;
  EXPECT_FALSE(tryRead("", &Rendered));
  EXPECT_NE(Rendered.find("bad magic"), std::string::npos) << Rendered;
}

TEST(BytecodeError, WrongMagic) {
  std::string Buffer = makeValidBuffer();
  Buffer[0] = 'X';
  std::string Rendered;
  EXPECT_FALSE(tryRead(Buffer, &Rendered));
  EXPECT_NE(Rendered.find("magic"), std::string::npos) << Rendered;
}

TEST(BytecodeError, UnsupportedVersion) {
  // "IRBC" + varint version 99: versioning policy is exact-match reject.
  std::string Buffer = "IRBC";
  Buffer.push_back(99);
  std::string Rendered;
  EXPECT_FALSE(tryRead(Buffer, &Rendered));
  EXPECT_NE(Rendered.find("unsupported bytecode version 99"),
            std::string::npos)
      << Rendered;
}

TEST(BytecodeError, TruncationAtEveryOffsetIsHandled) {
  std::string Buffer = makeValidBuffer();
  for (size_t Len = 0; Len < Buffer.size(); ++Len) {
    std::string Rendered;
    BytecodeReadResult Result;
    bool Ok = tryRead(Buffer.substr(0, Len), &Rendered, &Result);
    if (Ok) {
      // A prefix ending exactly on a section boundary is a structurally
      // valid (smaller) file; it must then hold strictly less content.
      EXPECT_FALSE(Result.Module) << "truncated to " << Len;
    } else {
      // Truncation inside the magic reports "bad magic"; past it, every
      // failure carries the byte offset.
      bool HasDiagnostic =
          Rendered.find("invalid bytecode") != std::string::npos ||
          Rendered.find("bad magic") != std::string::npos;
      EXPECT_TRUE(HasDiagnostic)
          << "truncated to " << Len << ": " << Rendered;
    }
  }
}

/// Byte offsets of every structural seam in the section container: end of
/// the header, each section's id byte, payload start, and payload end —
/// the boundaries a socket read is most likely to chop at.
std::vector<size_t> sectionBoundaries(const std::string &Buffer) {
  std::vector<size_t> Bounds;
  size_t Pos = 4; // magic
  while (Pos < Buffer.size() &&
         (static_cast<uint8_t>(Buffer[Pos]) & 0x80))
    ++Pos;
  ++Pos; // last version-varint byte
  Bounds.push_back(Pos);
  while (Pos < Buffer.size()) {
    Bounds.push_back(Pos); // section id
    ++Pos;
    // v2 headers carry a fixed 8-byte little-endian payload length.
    uint64_t Len = 0;
    for (unsigned I = 0; I != 8 && Pos < Buffer.size(); ++I)
      Len |= static_cast<uint64_t>(static_cast<uint8_t>(Buffer[Pos++]))
             << (8 * I);
    Bounds.push_back(Pos); // payload start
    Pos += Len;
    Bounds.push_back(Pos); // payload end
  }
  return Bounds;
}

TEST(BytecodeError, TruncationSweepAtSectionBoundaries) {
  std::string Buffer = makeValidBuffer();
  std::vector<size_t> Bounds = sectionBoundaries(Buffer);
  // Strings + Specs + Programs + TypeAttrPool + IR: five sections, three
  // seams each, plus the header end.
  ASSERT_GE(Bounds.size(), 16u);
  EXPECT_EQ(Bounds.back(), Buffer.size());
  for (size_t Boundary : Bounds)
    for (size_t Len : {Boundary - 1, Boundary, Boundary + 1}) {
      // The full-length "chop" is the valid file itself; strict prefixes
      // only.
      if (Len >= Buffer.size())
        continue;
      std::string Rendered;
      BytecodeReadResult Result;
      bool Ok = tryRead(Buffer.substr(0, Len), &Rendered, &Result);
      if (Ok) {
        // Ending exactly after a completed section is a structurally
        // valid smaller file — but never yields the full module.
        EXPECT_FALSE(Result.Module) << "chopped at " << Len;
      } else {
        EXPECT_NE(Rendered.find("invalid bytecode"), std::string::npos)
            << "chopped at " << Len << ": " << Rendered;
      }
    }
}

TEST(BytecodeError, HasSpecsPreScan) {
  // Full buffer: specs + module.
  std::string Full = makeValidBuffer();
  EXPECT_TRUE(bytecodeBufferHasSpecs(Full));

  // Module-only buffer.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                 "/cmath.irdl",
                        SrcMgr, Diags);
  ASSERT_NE(M, nullptr);
  OwningOpRef IR = parseSourceString(
      Ctx, "std.func @f(%p: !cmath.complex<f32>) { std.return }", SrcMgr,
      Diags);
  ASSERT_TRUE(IR) << Diags.renderAll();
  BytecodeWriter ModuleOnly;
  ModuleOnly.setModule(IR.get());
  EXPECT_FALSE(bytecodeBufferHasSpecs(ModuleOnly.write()));

  // Spec-only buffer.
  BytecodeWriter SpecOnly;
  SpecOnly.addModuleSpecs(*M);
  std::string SpecBuffer = SpecOnly.write();
  EXPECT_TRUE(bytecodeBufferHasSpecs(SpecBuffer));

  // A prefix truncated inside the Specs payload still reports specs: the
  // reader would register skeletons up to the truncation point, which is
  // exactly what the server's pre-scan must reject.
  EXPECT_TRUE(bytecodeBufferHasSpecs(
      SpecBuffer.substr(0, SpecBuffer.size() - 1)));

  // Non-bytecode and non-walkable buffers scan as spec-free (the reader
  // itself fails on them before registering anything).
  EXPECT_FALSE(bytecodeBufferHasSpecs("not bytecode"));
  EXPECT_FALSE(bytecodeBufferHasSpecs("IRBC"));
}

TEST(BytecodeError, SingleByteCorruptionNeverCrashes) {
  std::string Buffer = makeValidBuffer();
  for (size_t I = 4; I < Buffer.size(); ++I) {
    std::string Corrupt = Buffer;
    Corrupt[I] = static_cast<char>(Corrupt[I] ^ 0xFF);
    std::string Rendered;
    // Either a clean failure with a diagnostic or a (rare) still-valid
    // decode; the point is memory safety at every byte position.
    bool Ok = tryRead(Corrupt, &Rendered);
    if (!Ok) {
      EXPECT_FALSE(Rendered.empty()) << "byte " << I;
    }
  }
}

TEST(BytecodeError, TrailingGarbage) {
  std::string Buffer = makeValidBuffer() + "extra";
  std::string Rendered;
  EXPECT_FALSE(tryRead(Buffer, &Rendered));
  EXPECT_NE(Rendered.find("invalid bytecode"), std::string::npos)
      << Rendered;
}

TEST(BytecodeError, DiagnosticCarriesByteOffset) {
  std::string Buffer = makeValidBuffer();
  std::string Rendered;
  EXPECT_FALSE(tryRead(Buffer.substr(0, Buffer.size() / 2), &Rendered));
  EXPECT_NE(Rendered.find("at offset"), std::string::npos) << Rendered;
}

TEST(BytecodeError, ReadFileErrors) {
  IRContext Ctx;
  DiagnosticEngine Diags;
  BytecodeReadResult Result;
  EXPECT_TRUE(failed(
      readBytecodeFile("/no/such/file.irbc", Ctx, Diags, Result)));
  EXPECT_TRUE(Diags.hadError());
}

TEST(BytecodeError, UnknownDefinitionInPool) {
  // A module using a dialect type read into a context where the dialect
  // was never registered (spec section stripped) must fail by name.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                 "/cmath.irdl",
                        SrcMgr, Diags);
  ASSERT_NE(M, nullptr);
  OwningOpRef IR = parseSourceString(
      Ctx, "std.func @f(%p: !cmath.complex<f32>) { std.return }", SrcMgr,
      Diags);
  ASSERT_TRUE(IR) << Diags.renderAll();
  BytecodeWriter Writer;
  Writer.setModule(IR.get()); // no addModuleSpecs
  std::string Rendered;
  EXPECT_FALSE(tryRead(Writer.write(), &Rendered));
  EXPECT_NE(Rendered.find("cmath.complex"), std::string::npos) << Rendered;
}

} // namespace
