//===- SpecBytecodeTest.cpp - Dialect spec bytecode roundtrips ----------===//
///
/// Dialect specs through the bytecode: a dialect loaded from `.irbc`
/// must behave exactly like one loaded from IRDL text — same printed
/// spec, same formats, same verifiers, same native-constraint hooks.

#include "bytecode/Bytecode.h"
#include "corpus/Corpus.h"

#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Region.h"
#include "ir/StructuralCompare.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace irdl;

namespace {

/// Loads \p File textually, reloads it through bytecode into a fresh
/// context, and returns both modules for comparison.
struct Reloaded {
  IRContext TextCtx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags{&SrcMgr};
  std::unique_ptr<IRDLModule> FromText;

  IRContext BcCtx;
  DiagnosticEngine BcDiags;
  std::unique_ptr<IRDLModule> FromBytecode;

  explicit Reloaded(const std::string &File) {
    FromText = loadIRDLFile(TextCtx, std::string(IRDL_DIALECTS_DIR) + "/" +
                                         File,
                            SrcMgr, Diags);
    if (!FromText)
      return;
    BytecodeWriter Writer;
    Writer.addModuleSpecs(*FromText);
    std::string Bytes = Writer.write();

    BytecodeReader Reader(BcCtx, BcDiags);
    BytecodeReadResult Result;
    if (succeeded(Reader.read(Bytes, Result)))
      FromBytecode = std::move(Result.Specs);
  }
};

class SpecBytecode : public ::testing::TestWithParam<const char *> {};

TEST_P(SpecBytecode, PrintedSpecIsIdentical) {
  Reloaded R(GetParam());
  ASSERT_NE(R.FromText, nullptr) << R.Diags.renderAll();
  ASSERT_NE(R.FromBytecode, nullptr) << R.BcDiags.renderAll();
  ASSERT_EQ(R.FromText->getDialects().size(),
            R.FromBytecode->getDialects().size());
  for (size_t I = 0; I != R.FromText->getDialects().size(); ++I) {
    const DialectSpec &A = *R.FromText->getDialects()[I];
    const DialectSpec &B = *R.FromBytecode->getDialects()[I];
    EXPECT_EQ(A.Name, B.Name);
    // printDialectSpec is a complete rendering of the resolved spec
    // (params, constraints, formats, summaries); byte equality means the
    // object models match.
    EXPECT_EQ(printDialectSpec(A), printDialectSpec(B)) << A.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFiles, SpecBytecode,
                         ::testing::Values("cmath.irdl", "arith.irdl",
                                           "scf.irdl", "complex.irdl",
                                           "math.irdl"));

TEST(SpecBytecodeBehavior, IRParsesAgainstBytecodeLoadedDialect) {
  Reloaded R("cmath.irdl");
  ASSERT_NE(R.FromBytecode, nullptr) << R.BcDiags.renderAll();

  // Custom formats came through: the declarative cmath.mul syntax (with
  // type inference) parses against the bytecode-registered dialect.
  SourceMgr SM;
  DiagnosticEngine Diags(&SM);
  OwningOpRef M = parseSourceString(R.BcCtx, R"(
    std.func @f(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>)
        -> f32 {
      %m = cmath.mul %p, %q : f32
      %n = cmath.norm %m : f32
      std.return %n : f32
    }
  )",
                                    SM, Diags);
  ASSERT_TRUE(M) << Diags.renderAll();

  // And the generated verifier runs (and accepts valid IR).
  DiagnosticEngine VDiags;
  EXPECT_TRUE(succeeded(M->verify(VDiags))) << VDiags.renderAll();
}

TEST(SpecBytecodeBehavior, VerifierRejectsInvalidIR) {
  Reloaded R("cmath.irdl");
  ASSERT_NE(R.FromBytecode, nullptr) << R.BcDiags.renderAll();

  // cmath.mul requires both operands to share one complex type; mixing
  // f32/f64 elements must be rejected by the bytecode-compiled verifier
  // exactly as by the text-compiled one.
  SourceMgr SM;
  DiagnosticEngine Diags(&SM);
  OwningOpRef M = parseSourceString(R.BcCtx, R"(
    std.func @f(%p: !cmath.complex<f32>, %q: !cmath.complex<f64>)
        -> f32 {
      %m = "cmath.mul"(%p, %q) : (!cmath.complex<f32>,
                                  !cmath.complex<f64>)
          -> (!cmath.complex<f32>)
      std.return %m : !cmath.complex<f32>
    }
  )",
                                    SM, Diags);
  ASSERT_TRUE(M) << Diags.renderAll();
  DiagnosticEngine VDiags;
  EXPECT_TRUE(failed(M->verify(VDiags)));
}

TEST(SpecBytecodeBehavior, CorpusSpecsRoundTripWithNativeHooks) {
  // The full 28-dialect corpus, including native: constraint references,
  // roundtrips when the reader is given the same hooks.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  CorpusLoadResult Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
  ASSERT_TRUE(Corpus) << Diags.renderAll();

  BytecodeWriter Writer;
  Writer.addModuleSpecs(*Corpus.Module);
  std::string Bytes = Writer.write();

  IRContext FreshCtx;
  DiagnosticEngine FreshDiags;
  BytecodeReader Reader(FreshCtx, FreshDiags, corpusNativeOptions());
  BytecodeReadResult Result;
  ASSERT_TRUE(succeeded(Reader.read(Bytes, Result)))
      << FreshDiags.renderAll();
  ASSERT_NE(Result.Specs, nullptr);
  ASSERT_EQ(Result.Specs->getDialects().size(),
            Corpus.Module->getDialects().size());
  for (size_t I = 0; I != Result.Specs->getDialects().size(); ++I)
    EXPECT_EQ(printDialectSpec(*Corpus.Module->getDialects()[I]),
              printDialectSpec(*Result.Specs->getDialects()[I]));
}

TEST(SpecBytecodeBehavior, MissingNativeHookIsADiagnosedError) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  CorpusLoadResult Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
  ASSERT_TRUE(Corpus) << Diags.renderAll();

  BytecodeWriter Writer;
  Writer.addModuleSpecs(*Corpus.Module);
  std::string Bytes = Writer.write();

  // Reading without the native hooks must fail with a name, not bind a
  // null verifier.
  IRContext FreshCtx;
  DiagnosticEngine FreshDiags;
  BytecodeReader Reader(FreshCtx, FreshDiags); // default opts: no hooks
  BytecodeReadResult Result;
  EXPECT_TRUE(failed(Reader.read(Bytes, Result)));
  EXPECT_NE(FreshDiags.renderAll().find("native"), std::string::npos)
      << FreshDiags.renderAll();
}

TEST(SpecBytecodeBehavior, CfgModuleWithSuccessorsRoundTrips) {
  // Successor encoding: block indices within the enclosing region,
  // including forward references and block arguments.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  OwningOpRef M = parseSourceString(Ctx, R"(
    std.func @f(%c: i1, %x: f32) -> f32 {
      "std.cond_br"(%c)[^then, ^join] : (i1) -> ()
    ^then:
      "std.br"()[^join] : () -> ()
    ^join(%v: f32):
      std.return %v : f32
    }
  )",
                                    SrcMgr, Diags);
  ASSERT_TRUE(M) << Diags.renderAll();

  BytecodeWriter Writer;
  Writer.setModule(M.get());
  DiagnosticEngine RDiags;
  BytecodeReader Reader(Ctx, RDiags);
  BytecodeReadResult Result;
  ASSERT_TRUE(succeeded(Reader.read(Writer.write(), Result)))
      << RDiags.renderAll();
  ASSERT_TRUE(Result.Module);
  std::string WhyNot;
  EXPECT_TRUE(
      isStructurallyEquivalent(M.get(), Result.Module.get(), &WhyNot))
      << WhyNot;
}

TEST(SpecBytecodeBehavior, FileRoundTripHelpers) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto Specs = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                     "/cmath.irdl",
                            SrcMgr, Diags);
  ASSERT_NE(Specs, nullptr);
  OwningOpRef M = parseSourceString(
      Ctx, "%c = std.constant 1.5 : f32", SrcMgr, Diags);
  ASSERT_TRUE(M) << Diags.renderAll();

  std::string Path = ::testing::TempDir() + "spec_bytecode_helpers.irbc";
  ASSERT_TRUE(
      succeeded(writeBytecodeFile(Path, M.get(), Specs.get(), Diags)));

  IRContext FreshCtx;
  DiagnosticEngine FreshDiags;
  BytecodeReadResult Result;
  ASSERT_TRUE(
      succeeded(readBytecodeFile(Path, FreshCtx, FreshDiags, Result)))
      << FreshDiags.renderAll();
  ASSERT_TRUE(Result.Module);
  ASSERT_NE(Result.Specs, nullptr);
  std::string WhyNot;
  EXPECT_TRUE(
      isStructurallyEquivalent(M.get(), Result.Module.get(), &WhyNot))
      << WhyNot;
  std::remove(Path.c_str());
}

} // namespace
