//===- BytecodeRoundTripTest.cpp - IR bytecode roundtrips ---------------===//
///
/// Property tests over synthesized modules: for every corpus dialect and
/// every bundled dialect file, a module synthesized over the dialect
/// survives (a) generic-form print → reparse and (b) bytecode write →
/// read, structurally identical both times. Both checks reuse the same
/// isStructurallyEquivalent helper, so a bytecode divergence shows up as
/// a path into the IR, not a blind byte mismatch.

#include "bytecode/Bytecode.h"
#include "corpus/Corpus.h"
#include "corpus/ModuleSynthesizer.h"
#include "ir/Block.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "ir/StructuralCompare.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

size_t countOps(Operation *Root) {
  size_t N = 0;
  Root->walk([&](Operation *) { ++N; });
  return N;
}

/// Runs both roundtrips for a module synthesized over \p Spec in \p Ctx.
void checkRoundTrips(IRContext &Ctx, const DialectSpec &Spec) {
  OwningOpRef M = synthesizeModule(Ctx, Spec);
  ASSERT_TRUE(M);
  ASSERT_GT(countOps(M.get()), 1u) << Spec.Name;

  // (a) Generic-form print → reparse.
  PrintOptions Generic;
  Generic.GenericForm = true;
  std::string Text = printOpToString(M.get(), Generic);
  {
    SourceMgr SM;
    DiagnosticEngine Diags(&SM);
    OwningOpRef Reparsed = parseSourceString(Ctx, Text, SM, Diags);
    ASSERT_TRUE(Reparsed) << Spec.Name << "\n"
                          << Diags.renderAll() << "\n"
                          << Text.substr(0, 2000);
    std::string WhyNot;
    EXPECT_TRUE(isStructurallyEquivalent(M.get(), Reparsed.get(), &WhyNot))
        << Spec.Name << ": print->reparse diverged at " << WhyNot;
  }

  // (b) Bytecode write → read.
  BytecodeWriter Writer;
  Writer.setModule(M.get());
  std::string Bytes = Writer.write();
  ASSERT_TRUE(isBytecodeBuffer(Bytes));
  {
    DiagnosticEngine Diags;
    BytecodeReader Reader(Ctx, Diags);
    BytecodeReadResult Result;
    ASSERT_TRUE(succeeded(Reader.read(Bytes, Result)))
        << Spec.Name << "\n"
        << Diags.renderAll();
    ASSERT_TRUE(Result.Module);
    std::string WhyNot;
    EXPECT_TRUE(
        isStructurallyEquivalent(M.get(), Result.Module.get(), &WhyNot))
        << Spec.Name << ": bytecode roundtrip diverged at " << WhyNot;
  }
}

//===----------------------------------------------------------------------===//
// All 28 corpus dialects
//===----------------------------------------------------------------------===//

class CorpusBytecodeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CorpusBytecodeRoundTrip, SynthesizedModule) {
  const DialectProfile &Profile =
      getDialectProfiles()[static_cast<size_t>(GetParam())];
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  std::string Text =
      synthesizeSupportDialectIRDL() + synthesizeDialectIRDL(Profile);
  auto M = loadIRDL(Ctx, Text, SrcMgr, Diags, corpusNativeOptions());
  ASSERT_NE(M, nullptr) << Profile.Name << "\n" << Diags.renderAll();
  const DialectSpec *Spec = M->lookupDialect(Profile.Name);
  ASSERT_NE(Spec, nullptr);
  checkRoundTrips(Ctx, *Spec);
}

INSTANTIATE_TEST_SUITE_P(AllDialects, CorpusBytecodeRoundTrip,
                         ::testing::Range(0, 28));

//===----------------------------------------------------------------------===//
// All bundled dialect files
//===----------------------------------------------------------------------===//

class DialectFileBytecodeRoundTrip
    : public ::testing::TestWithParam<const char *> {};

TEST_P(DialectFileBytecodeRoundTrip, SynthesizedModule) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) + "/" +
                                 GetParam(),
                        SrcMgr, Diags);
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  for (const auto &Spec : M->getDialects())
    checkRoundTrips(Ctx, *Spec);
}

TEST_P(DialectFileBytecodeRoundTrip, SelfContainedBufferIntoFreshContext) {
  // Specs + IR in one buffer, read into a context that has never seen the
  // dialect: the spec section must register everything the IR needs.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) + "/" +
                                 GetParam(),
                        SrcMgr, Diags);
  ASSERT_NE(M, nullptr) << Diags.renderAll();

  for (const auto &Spec : M->getDialects()) {
    OwningOpRef Synth = synthesizeModule(Ctx, *Spec);
    BytecodeWriter Writer;
    Writer.addModuleSpecs(*M);
    Writer.setModule(Synth.get());
    std::string Bytes = Writer.write();

    IRContext FreshCtx;
    DiagnosticEngine FreshDiags;
    BytecodeReader Reader(FreshCtx, FreshDiags);
    BytecodeReadResult Result;
    ASSERT_TRUE(succeeded(Reader.read(Bytes, Result)))
        << Spec->Name << "\n"
        << FreshDiags.renderAll();
    ASSERT_TRUE(Result.Module);
    ASSERT_NE(Result.Specs, nullptr);
    EXPECT_EQ(Result.Specs->getDialects().size(),
              M->getDialects().size());
    std::string WhyNot;
    EXPECT_TRUE(
        isStructurallyEquivalent(Synth.get(), Result.Module.get(), &WhyNot))
        << Spec->Name << ": cross-context roundtrip diverged at " << WhyNot;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFiles, DialectFileBytecodeRoundTrip,
                         ::testing::Values("cmath.irdl", "arith.irdl",
                                           "scf.irdl", "complex.irdl",
                                           "math.irdl"));

} // namespace
