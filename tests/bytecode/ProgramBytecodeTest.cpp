//===- ProgramBytecodeTest.cpp - Compiled program serialization ---------===//
///
/// The v2 Programs section and the content-hash spec cache: deserialized
/// constraint programs must be used as-is (no recompilation), the mmap'd
/// zero-copy read must be observationally identical to the copied read
/// and to the tree interpreter over the whole synthetic corpus, corrupt
/// program sections (bad padding, misalignment, truncation) must be
/// rejected with diagnostics, and both cache layers must hit on
/// identical content and invalidate stale on-disk entries.

#include "bytecode/Bytecode.h"
#include "bytecode/Encoding.h"
#include "bytecode/SpecCache.h"
#include "corpus/Corpus.h"
#include "corpus/ModuleSynthesizer.h"
#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "ir/Verifier.h"
#include "irdl/ConstraintCompiler.h"
#include "support/Statistic.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace irdl;
using namespace irdl::bytecode;

namespace {

/// The full corpus loaded once, with its spec-only bytecode.
struct CorpusFixture {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags{&SrcMgr};
  CorpusLoadResult Corpus;
  std::string SpecBytes;

  CorpusFixture() {
    Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
    if (!Corpus)
      return;
    BytecodeWriter Writer;
    Writer.addModuleSpecs(*Corpus.Module);
    SpecBytes = Writer.write();
  }
};

CorpusFixture &corpusFixture() {
  static CorpusFixture F;
  return F;
}

/// A spec-only cmath buffer (no native hooks needed to read it back).
std::string cmathSpecBytes() {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                 "/cmath.irdl",
                        SrcMgr, Diags);
  EXPECT_NE(M, nullptr) << Diags.renderAll();
  BytecodeWriter Writer;
  Writer.addModuleSpecs(*M);
  return Writer.write();
}

bool tryRead(const std::string &Buffer, std::string *RenderedDiags) {
  IRContext Ctx;
  DiagnosticEngine Diags;
  BytecodeReader Reader(Ctx, Diags);
  BytecodeReadResult Result;
  bool Ok = succeeded(Reader.read(Buffer, Result));
  if (RenderedDiags)
    *RenderedDiags = Diags.renderAll();
  return Ok;
}

/// Payload range [start, end) of the section with \p WantId, walking the
/// v2 container (magic, varint version, then id byte + fixed u64 length).
std::pair<size_t, size_t> sectionPayload(const std::string &Buffer,
                                         SectionId WantId) {
  size_t Pos = 4; // magic
  while (Pos < Buffer.size() && (static_cast<uint8_t>(Buffer[Pos]) & 0x80))
    ++Pos;
  ++Pos; // last version-varint byte
  while (Pos + 9 <= Buffer.size()) {
    uint8_t Id = static_cast<uint8_t>(Buffer[Pos++]);
    uint64_t Len = 0;
    for (unsigned I = 0; I != 8; ++I)
      Len |= static_cast<uint64_t>(static_cast<uint8_t>(Buffer[Pos++]))
             << (8 * I);
    if (Id == static_cast<uint8_t>(WantId))
      return {Pos, Pos + Len};
    Pos += Len;
  }
  return {0, 0};
}

/// Restores the constraint-engine global even when an assertion bails.
struct EngineGuard {
  ~EngineGuard() { setCompiledConstraintsEnabled(true); }
};

TEST(ProgramBytecode, DeserializedProgramsAreNotRecompiled) {
  CorpusFixture &F = corpusFixture();
  ASSERT_TRUE(static_cast<bool>(F.Corpus)) << F.Diags.renderAll();

  Statistic *Compiled = StatisticRegistry::instance().lookup(
      "ConstraintCompiler", "NumProgramsCompiled");
  ASSERT_NE(Compiled, nullptr);
  uint64_t Before = Compiled->get();

  IRContext FreshCtx;
  DiagnosticEngine FreshDiags;
  BytecodeReader Reader(FreshCtx, FreshDiags, corpusNativeOptions());
  BytecodeReadResult Result;
  ASSERT_TRUE(succeeded(Reader.read(F.SpecBytes, Result)))
      << FreshDiags.renderAll();
  ASSERT_NE(Result.Specs, nullptr);
  ASSERT_EQ(Result.Specs->getDialects().size(),
            F.Corpus.Module->getDialects().size());

  // Every compiled program came out of the Programs section; registration
  // found all slots populated and compiled nothing.
  EXPECT_EQ(Compiled->get(), Before);
}

TEST(ProgramBytecode, MmapCopiedAndInterpreterVerifyIdentically) {
  EngineGuard Guard;
  CorpusFixture &F = corpusFixture();
  ASSERT_TRUE(static_cast<bool>(F.Corpus)) << F.Diags.renderAll();

  std::string Path = ::testing::TempDir() + "program_bytecode_corpus." +
                     std::to_string(::getpid()) + ".irbc";
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(F.SpecBytes.data(),
              static_cast<std::streamsize>(F.SpecBytes.size()));
  }

  // Same specs three ways: textual frontend (the fixture context),
  // copied bytecode read, and the zero-copy mmap read whose programs
  // alias the mapping.
  IRContext CopyCtx;
  DiagnosticEngine CopyDiags;
  BytecodeReader CopyReader(CopyCtx, CopyDiags, corpusNativeOptions());
  BytecodeReadResult CopyResult;
  ASSERT_TRUE(succeeded(CopyReader.read(F.SpecBytes, CopyResult)))
      << CopyDiags.renderAll();

  IRContext MmapCtx;
  DiagnosticEngine MmapDiags;
  BytecodeReadResult MmapResult;
  ASSERT_TRUE(succeeded(readBytecodeFileMapped(
      Path, MmapCtx, MmapDiags, MmapResult, corpusNativeOptions())))
      << MmapDiags.renderAll();

  PrintOptions Generic;
  Generic.GenericForm = true;

  // Each op drops its first attribute so the failure path is compared
  // too; the mutation is deterministic over identical parses.
  auto DropFirstAttrs = [](Operation *M) {
    M->walk([](Operation *Op) {
      if (!Op->getAttrs().empty())
        Op->removeAttr(Op->getAttrs().begin()->Name);
    });
  };

  for (const auto &Spec : F.Corpus.AnalysisDialects) {
    OwningOpRef Synth = synthesizeModule(F.Ctx, *Spec);
    ASSERT_TRUE(static_cast<bool>(Synth)) << Spec->Name;
    std::string Text = printOpToString(Synth.get(), Generic);

    for (bool Mutate : {false, true}) {
      struct Outcome {
        bool Parsed = false;
        bool Verified = false;
        std::string Diags;
      };
      // TextCtx compiled, CopyCtx compiled, MmapCtx compiled, MmapCtx
      // through the tree interpreter (the reference oracle).
      Outcome Outcomes[4];
      IRContext *Ctxs[4] = {&F.Ctx, &CopyCtx, &MmapCtx, &MmapCtx};
      for (int I = 0; I != 4; ++I) {
        SourceMgr SM;
        DiagnosticEngine PDiags(&SM);
        OwningOpRef M = parseSourceString(*Ctxs[I], Text, SM, PDiags);
        Outcomes[I].Parsed = static_cast<bool>(M);
        if (!M)
          continue;
        if (Mutate)
          DropFirstAttrs(M.get());
        setCompiledConstraintsEnabled(I != 3);
        DiagnosticEngine VDiags(&SM);
        Outcomes[I].Verified = succeeded(M->verify(VDiags));
        Outcomes[I].Diags = VDiags.renderAll();
        setCompiledConstraintsEnabled(true);
      }
      const char *Labels[4] = {"text", "copy", "mmap", "interpreter"};
      ASSERT_TRUE(Outcomes[0].Parsed) << Spec->Name;
      for (int I = 1; I != 4; ++I) {
        EXPECT_EQ(Outcomes[0].Parsed, Outcomes[I].Parsed)
            << Spec->Name << " via " << Labels[I];
        EXPECT_EQ(Outcomes[0].Verified, Outcomes[I].Verified)
            << Spec->Name << " via " << Labels[I]
            << (Mutate ? " (mutated)" : "");
        EXPECT_EQ(Outcomes[0].Diags, Outcomes[I].Diags)
            << Spec->Name << " via " << Labels[I]
            << (Mutate ? " (mutated)" : "");
      }
    }
  }
  std::remove(Path.c_str());
}

TEST(ProgramBytecode, OversizedPadCountIsRejected) {
  std::string Buffer = cmathSpecBytes();
  auto [Start, End] = sectionPayload(Buffer, SectionId::Programs);
  ASSERT_NE(Start, 0u) << "no Programs section in a spec buffer";
  ASSERT_LT(Start, End);

  // The pad count must stay below the 8-byte alignment unit.
  std::string Corrupt = Buffer;
  Corrupt[Start] = 8;
  std::string Rendered;
  EXPECT_FALSE(tryRead(Corrupt, &Rendered));
  EXPECT_NE(Rendered.find("pad count"), std::string::npos) << Rendered;
}

TEST(ProgramBytecode, MisalignedProgramBodyIsRejected) {
  std::string Buffer = cmathSpecBytes();
  auto [Start, End] = sectionPayload(Buffer, SectionId::Programs);
  ASSERT_NE(Start, 0u);

  // Any in-range pad count other than the written one shifts the body
  // off its 8-byte boundary; the reader must refuse before decoding.
  uint8_t Pad = static_cast<uint8_t>(Buffer[Start]);
  std::string Corrupt = Buffer;
  Corrupt[Start] = static_cast<char>((Pad + 1) % 8);
  std::string Rendered;
  EXPECT_FALSE(tryRead(Corrupt, &Rendered));
  EXPECT_NE(Rendered.find("misaligned"), std::string::npos) << Rendered;
}

TEST(ProgramBytecode, TruncatedProgramSectionIsRejected) {
  std::string Buffer = cmathSpecBytes();
  auto [Start, End] = sectionPayload(Buffer, SectionId::Programs);
  ASSERT_NE(Start, 0u);

  for (size_t Len : {Start + 1, (Start + End) / 2, End - 1}) {
    std::string Rendered;
    EXPECT_FALSE(tryRead(Buffer.substr(0, Len), &Rendered))
        << "chopped at " << Len;
    EXPECT_NE(Rendered.find("invalid bytecode"), std::string::npos)
        << "chopped at " << Len << ": " << Rendered;
  }
}

TEST(ProgramBytecode, SpecHashIgnoresNonSpecSections) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                 "/cmath.irdl",
                        SrcMgr, Diags);
  ASSERT_NE(M, nullptr) << Diags.renderAll();

  BytecodeWriter Plain;
  Plain.addModuleSpecs(*M);
  std::string PlainBytes = Plain.write();

  BytecodeWriter WithMeta;
  WithMeta.addModuleSpecs(*M);
  WithMeta.setSourceHash(0x1234);
  std::string MetaBytes = WithMeta.write();

  // The Meta section changes the bytes but not the spec identity.
  EXPECT_NE(PlainBytes, MetaBytes);
  EXPECT_EQ(hashSpecBuffer(PlainBytes), hashSpecBuffer(MetaBytes));

  // Textual buffers hash whole — any edit is a different spec.
  EXPECT_NE(hashSpecBuffer("Dialect a {}"), hashSpecBuffer("Dialect b {}"));
}

TEST(ProgramBytecode, InProcessSpecCacheHitsOnIdenticalContent) {
  std::string Source = "in-process spec cache test source";
  uint64_t Hash = hashSpecBuffer(Source);

  ASSERT_EQ(SpecLoadCache::instance().lookup(Hash), nullptr);

  CachedSpecs Entry;
  Entry.Ctx = std::make_shared<IRContext>();
  {
    SourceMgr SM;
    DiagnosticEngine Diags(&SM);
    Entry.Module = loadIRDLFile(*Entry.Ctx,
                                std::string(IRDL_DIALECTS_DIR) +
                                    "/cmath.irdl",
                                SM, Diags);
    ASSERT_NE(Entry.Module, nullptr) << Diags.renderAll();
  }
  const IRDLModule *Inserted = Entry.Module.get();
  SpecLoadCache::instance().insert(Hash, std::move(Entry));

  auto Hit = SpecLoadCache::instance().lookup(Hash);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Module.get(), Inserted);
  EXPECT_EQ(SpecLoadCache::instance().lookup(Hash ^ 1), nullptr);
}

TEST(ProgramBytecode, StaleOnDiskCacheEntryIsInvalidated) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  std::string SpecPath = std::string(IRDL_DIALECTS_DIR) + "/cmath.irdl";
  auto M = loadIRDLFile(Ctx, SpecPath, SrcMgr, Diags);
  ASSERT_NE(M, nullptr) << Diags.renderAll();

  std::string Dir = ::testing::TempDir() + "irdl_spec_cache_test." +
                    std::to_string(::getpid());
  uint64_t Hash = 0xfeedfacecafe0001ULL;
  ASSERT_TRUE(succeeded(storeCachedSpec(Dir, Hash, *M, Diags)))
      << Diags.renderAll();

  // Round trip: the entry loads via mmap into a fresh context.
  {
    IRContext FreshCtx;
    DiagnosticEngine FreshDiags;
    BytecodeReadResult Result;
    ASSERT_TRUE(
        succeeded(loadCachedSpec(Dir, Hash, FreshCtx, FreshDiags, Result)))
        << FreshDiags.renderAll();
    ASSERT_NE(Result.Specs, nullptr);
    EXPECT_EQ(printDialectSpec(*M->getDialects()[0]),
              printDialectSpec(*Result.Specs->getDialects()[0]));
  }

  // Rename the entry under a different hash: its embedded Meta hash no
  // longer matches its filename, so the load must miss, warn, and delete
  // the stale file.
  uint64_t WrongHash = Hash ^ 0xdeadULL;
  ASSERT_EQ(std::rename(specCachePath(Dir, Hash).c_str(),
                        specCachePath(Dir, WrongHash).c_str()),
            0);
  {
    IRContext FreshCtx;
    DiagnosticEngine FreshDiags;
    BytecodeReadResult Result;
    EXPECT_TRUE(
        failed(loadCachedSpec(Dir, WrongHash, FreshCtx, FreshDiags, Result)));
    EXPECT_NE(FreshDiags.renderAll().find("stale"), std::string::npos)
        << FreshDiags.renderAll();
    struct ::stat St;
    EXPECT_NE(::stat(specCachePath(Dir, WrongHash).c_str(), &St), 0)
        << "stale cache entry survived";
  }

  // An absent entry is a silent miss — no diagnostics at all.
  {
    IRContext FreshCtx;
    DiagnosticEngine FreshDiags;
    BytecodeReadResult Result;
    EXPECT_TRUE(failed(
        loadCachedSpec(Dir, Hash + 42, FreshCtx, FreshDiags, Result)));
    EXPECT_TRUE(FreshDiags.renderAll().empty())
        << FreshDiags.renderAll();
  }
  ::rmdir(Dir.c_str());
}

TEST(ProgramBytecode, VersionMismatchNamesFileAndVersions) {
  std::string Path = ::testing::TempDir() + "program_bytecode_v99." +
                     std::to_string(::getpid()) + ".irbc";
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << "IRBC" << static_cast<char>(99);
  }

  IRContext Ctx;
  DiagnosticEngine Diags;
  BytecodeReadResult Result;
  EXPECT_TRUE(failed(readBytecodeFile(Path, Ctx, Diags, Result)));
  std::string Rendered = Diags.renderAll();
  // The diagnostic must carry the offending file and both versions.
  EXPECT_NE(Rendered.find(Path), std::string::npos) << Rendered;
  EXPECT_NE(Rendered.find("unsupported bytecode version 99"),
            std::string::npos)
      << Rendered;
  EXPECT_NE(Rendered.find("expected 2"), std::string::npos) << Rendered;
  std::remove(Path.c_str());
}

} // namespace
