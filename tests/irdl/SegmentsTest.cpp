//===- SegmentsTest.cpp - Variadic operand/result segmentation ----------===//

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"
#include "irdl/Registration.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class SegmentsTest : public ::testing::Test {
protected:
  SegmentsTest() : Diags(&SrcMgr) {
    Module = loadIRDL(Ctx, R"(
      Dialect seg {
        Operation fixed { Operands (a: !f32, b: !f32) }
        Operation one_variadic {
          Operands (pre: !f32, rest: Variadic<!i32>)
        }
        Operation one_optional {
          Operands (x: Optional<!f32>, y: !i32)
        }
        Operation two_variadic {
          Operands (xs: Variadic<!f32>, ys: Variadic<!i32>)
        }
        Operation variadic_results {
          Results (outs: Variadic<!f32>)
        }
      }
    )",
                      SrcMgr, Diags);
  }

  /// Builds a seg.<name> op with float/int operands per the pattern
  /// string: 'f' -> f32 value, 'i' -> i32 value.
  Operation *build(std::string_view Name, std::string_view Pattern,
                   NamedAttrList Attrs = {},
                   std::vector<Type> Results = {}) {
    Dialect *T = Ctx.getOrCreateDialect("tst");
    OpDefinition *Src = T->lookupOp("src");
    if (!Src)
      Src = T->addOp("src");
    std::vector<Value> Operands;
    for (char C : Pattern) {
      OperationState S(Ctx, Src);
      S.ResultTypes = {C == 'f' ? Ctx.getFloatType(32)
                                : Ctx.getIntegerType(32)};
      Operation *Op = Operation::create(S);
      Sources.push_back(Op);
      Operands.push_back(Op->getResult(0));
    }
    OperationState S(Ctx, Ctx.resolveOpDef(std::string("seg.") +
                                           std::string(Name)));
    S.Operands = std::move(Operands);
    S.Attributes = std::move(Attrs);
    S.ResultTypes = std::move(Results);
    Operation *Op = Operation::create(S);
    Built.push_back(Op);
    return Op;
  }

  LogicalResult verify(Operation *Op) {
    VDiags.clear();
    return Op->getDef()->getVerifier()(Op, VDiags);
  }

  ~SegmentsTest() override {
    for (Operation *Op : Built)
      Op->destroy();
    for (Operation *Op : Sources)
      Op->destroy();
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  DiagnosticEngine VDiags;
  std::unique_ptr<IRDLModule> Module;
  std::vector<Operation *> Sources;
  std::vector<Operation *> Built;
};

TEST_F(SegmentsTest, FixedArity) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(build("fixed", "ff"))));
  EXPECT_TRUE(failed(verify(build("fixed", "f"))));
  EXPECT_TRUE(failed(verify(build("fixed", "fff"))));
}

TEST_F(SegmentsTest, SingleVariadicTakesSlack) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(build("one_variadic", "f"))))
      << VDiags.renderAll();
  EXPECT_TRUE(succeeded(verify(build("one_variadic", "fi"))));
  EXPECT_TRUE(succeeded(verify(build("one_variadic", "fiii"))));
  // Missing the fixed operand.
  EXPECT_TRUE(failed(verify(build("one_variadic", ""))));
  // Wrong type inside the variadic group.
  EXPECT_TRUE(failed(verify(build("one_variadic", "fif"))));
}

TEST_F(SegmentsTest, OptionalBoundsSlack) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(build("one_optional", "i"))))
      << VDiags.renderAll();
  EXPECT_TRUE(succeeded(verify(build("one_optional", "fi"))));
  EXPECT_TRUE(failed(verify(build("one_optional", "ffi"))));
}

TEST_F(SegmentsTest, TwoVariadicsRequireSegmentAttr) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  // Without the attribute: rejected (ambiguous).
  EXPECT_TRUE(failed(verify(build("two_variadic", "ffii"))));
  EXPECT_NE(VDiags.renderAll().find("operandSegmentSizes"),
            std::string::npos);

  // With the attribute: accepted when consistent.
  NamedAttrList Attrs;
  Attrs.set("operandSegmentSizes",
            Ctx.getArrayAttr({Ctx.getIntegerAttr(2, 32),
                              Ctx.getIntegerAttr(2, 32)}));
  EXPECT_TRUE(succeeded(verify(build("two_variadic", "ffii", Attrs))))
      << VDiags.renderAll();

  // Sizes that do not sum to the operand count.
  NamedAttrList Bad;
  Bad.set("operandSegmentSizes",
          Ctx.getArrayAttr({Ctx.getIntegerAttr(1, 32),
                            Ctx.getIntegerAttr(2, 32)}));
  EXPECT_TRUE(failed(verify(build("two_variadic", "ffii", Bad))));

  // Segmentation that mismatches the element types.
  NamedAttrList Shifted;
  Shifted.set("operandSegmentSizes",
              Ctx.getArrayAttr({Ctx.getIntegerAttr(3, 32),
                                Ctx.getIntegerAttr(1, 32)}));
  EXPECT_TRUE(failed(verify(build("two_variadic", "ffii", Shifted))));
}

TEST_F(SegmentsTest, VariadicResults) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(build("variadic_results", "", {}, {}))));
  EXPECT_TRUE(succeeded(verify(build(
      "variadic_results", "", {},
      {Ctx.getFloatType(32), Ctx.getFloatType(32)}))));
  EXPECT_TRUE(failed(verify(build("variadic_results", "", {},
                                  {Ctx.getIntegerType(32)}))));
}

TEST_F(SegmentsTest, ComputeSegmentsDirect) {
  std::vector<OperandSpec> Specs;
  Specs.push_back({"a", Constraint::anyType(), VariadicKind::Single});
  Specs.push_back({"b", Constraint::anyType(), VariadicKind::Variadic});
  std::string Err;
  OperationState S(Ctx, OperationName(std::string("x.y")));
  Operation *Op = Operation::create(S);
  auto Segments = computeSegments(Specs, 4, Op, "operandSegmentSizes", Err);
  ASSERT_TRUE(Segments.has_value()) << Err;
  EXPECT_EQ((*Segments)[0], std::make_pair(0u, 1u));
  EXPECT_EQ((*Segments)[1], std::make_pair(1u, 3u));
  Op->destroy();
}

} // namespace
