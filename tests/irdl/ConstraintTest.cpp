//===- ConstraintTest.cpp - The Figure 2 constraint algebra ------------===//

#include "irdl/Constraint.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class ConstraintTest : public ::testing::Test {
protected:
  ConstraintTest() {
    Dialect *D = Ctx.getOrCreateDialect("cmath");
    Complex = D->addType("complex");
    Complex->setParamNames({"elementType"});
    Pair = D->addType("pair");
    Pair->setParamNames({"first", "second"});
  }

  bool matches(const ConstraintPtr &C, const ParamValue &V) {
    MatchContext MC;
    return C->matches(V, MC);
  }

  Type complexOf(Type Elem) {
    return Ctx.getType(Complex, {ParamValue(Elem)});
  }

  IRContext Ctx;
  TypeDefinition *Complex = nullptr;
  TypeDefinition *Pair = nullptr;
};

TEST_F(ConstraintTest, AnyKinds) {
  EXPECT_TRUE(matches(Constraint::anyType(),
                      ParamValue(Ctx.getFloatType(32))));
  EXPECT_FALSE(matches(Constraint::anyType(),
                       ParamValue(Ctx.getIntegerAttr(1, 32))));
  EXPECT_TRUE(matches(Constraint::anyAttr(),
                      ParamValue(Ctx.getIntegerAttr(1, 32))));
  EXPECT_FALSE(matches(Constraint::anyAttr(),
                       ParamValue(Ctx.getFloatType(32))));
  EXPECT_TRUE(matches(Constraint::anyParam(), ParamValue(IntVal{})));
  EXPECT_TRUE(matches(Constraint::anyParam(),
                      ParamValue(std::string("x"))));
}

TEST_F(ConstraintTest, TypeEquality) {
  ConstraintPtr C = Constraint::typeEq(Ctx.getFloatType(32));
  EXPECT_TRUE(matches(C, ParamValue(Ctx.getFloatType(32))));
  EXPECT_FALSE(matches(C, ParamValue(Ctx.getFloatType(64))));

  // Parametric equality reconstructs nested constraints.
  ConstraintPtr CC = Constraint::typeEq(complexOf(Ctx.getFloatType(32)));
  EXPECT_TRUE(matches(CC, ParamValue(complexOf(Ctx.getFloatType(32)))));
  EXPECT_FALSE(matches(CC, ParamValue(complexOf(Ctx.getFloatType(64)))));
}

TEST_F(ConstraintTest, BaseNameMatch) {
  ConstraintPtr C = Constraint::typeConstraint(Complex, {},
                                               /*BaseOnly=*/true);
  EXPECT_TRUE(matches(C, ParamValue(complexOf(Ctx.getFloatType(32)))));
  EXPECT_TRUE(matches(C, ParamValue(complexOf(Ctx.getFloatType(64)))));
  EXPECT_FALSE(matches(C, ParamValue(Ctx.getFloatType(32))));
}

TEST_F(ConstraintTest, ParametricMatch) {
  ConstraintPtr C = Constraint::typeConstraint(
      Complex, {Constraint::typeEq(Ctx.getFloatType(32))},
      /*BaseOnly=*/false);
  EXPECT_TRUE(matches(C, ParamValue(complexOf(Ctx.getFloatType(32)))));
  EXPECT_FALSE(matches(C, ParamValue(complexOf(Ctx.getFloatType(64)))));
}

TEST_F(ConstraintTest, IntKindsAndLiterals) {
  ConstraintPtr U32 = Constraint::intKind(32, Signedness::Unsigned);
  EXPECT_TRUE(matches(U32, ParamValue(IntVal{32, Signedness::Unsigned, 7})));
  EXPECT_FALSE(matches(U32, ParamValue(IntVal{32, Signedness::Signed, 7})));
  EXPECT_FALSE(matches(U32, ParamValue(IntVal{64, Signedness::Unsigned, 7})));

  ConstraintPtr Three =
      Constraint::intEq(IntVal{32, Signedness::Signed, 3});
  EXPECT_TRUE(matches(Three, ParamValue(IntVal{32, Signedness::Signed, 3})));
  EXPECT_FALSE(matches(Three, ParamValue(IntVal{32, Signedness::Signed, 4})));
}

TEST_F(ConstraintTest, StringsAndFloats) {
  EXPECT_TRUE(matches(Constraint::stringKind(),
                      ParamValue(std::string("any"))));
  EXPECT_FALSE(matches(Constraint::stringKind(), ParamValue(IntVal{})));
  EXPECT_TRUE(matches(Constraint::stringEq("foo"),
                      ParamValue(std::string("foo"))));
  EXPECT_FALSE(matches(Constraint::stringEq("foo"),
                       ParamValue(std::string("bar"))));

  EXPECT_TRUE(matches(Constraint::floatKind(32),
                      ParamValue(FloatVal{32, 1.5})));
  EXPECT_FALSE(matches(Constraint::floatKind(32),
                       ParamValue(FloatVal{64, 1.5})));
  // Width 0 matches any float.
  EXPECT_TRUE(matches(Constraint::floatKind(0),
                      ParamValue(FloatVal{64, 1.5})));
}

TEST_F(ConstraintTest, Enums) {
  EnumDef *Sign = Ctx.getSignednessEnum();
  EXPECT_TRUE(matches(Constraint::enumKind(Sign),
                      ParamValue(EnumVal{Sign, 0})));
  EXPECT_TRUE(matches(Constraint::enumEq(EnumVal{Sign, 1}),
                      ParamValue(EnumVal{Sign, 1})));
  EXPECT_FALSE(matches(Constraint::enumEq(EnumVal{Sign, 1}),
                       ParamValue(EnumVal{Sign, 2})));
}

TEST_F(ConstraintTest, Arrays) {
  std::vector<ParamValue> Elems;
  Elems.emplace_back(IntVal{32, Signedness::Signless, 1});
  Elems.emplace_back(IntVal{32, Signedness::Signless, 2});
  ParamValue Arr{std::vector<ParamValue>(Elems)};

  EXPECT_TRUE(matches(Constraint::anyArray(), Arr));
  EXPECT_FALSE(matches(Constraint::anyArray(), ParamValue(IntVal{})));

  ConstraintPtr AllI32 = Constraint::arrayOf(
      Constraint::intKind(32, Signedness::Signless));
  EXPECT_TRUE(matches(AllI32, Arr));
  ConstraintPtr AllStr = Constraint::arrayOf(Constraint::stringKind());
  EXPECT_FALSE(matches(AllStr, Arr));

  ConstraintPtr Exact = Constraint::arrayExact(
      {Constraint::intEq(IntVal{32, Signedness::Signless, 1}),
       Constraint::intEq(IntVal{32, Signedness::Signless, 2})});
  EXPECT_TRUE(matches(Exact, Arr));
  ConstraintPtr WrongArity = Constraint::arrayExact(
      {Constraint::intEq(IntVal{32, Signedness::Signless, 1})});
  EXPECT_FALSE(matches(WrongArity, Arr));
}

TEST_F(ConstraintTest, Combinators) {
  ConstraintPtr F32 = Constraint::typeEq(Ctx.getFloatType(32));
  ConstraintPtr F64 = Constraint::typeEq(Ctx.getFloatType(64));
  ConstraintPtr Either = Constraint::anyOf({F32, F64});
  EXPECT_TRUE(matches(Either, ParamValue(Ctx.getFloatType(32))));
  EXPECT_TRUE(matches(Either, ParamValue(Ctx.getFloatType(64))));
  EXPECT_FALSE(matches(Either, ParamValue(Ctx.getFloatType(16))));

  // And<int32_t, Not<0 : int32_t>> — the paper's non-null example.
  ConstraintPtr NonNull = Constraint::conjunction(
      {Constraint::intKind(32, Signedness::Signed),
       Constraint::negation(
           Constraint::intEq(IntVal{32, Signedness::Signed, 0}))});
  EXPECT_TRUE(matches(NonNull, ParamValue(IntVal{32, Signedness::Signed, 5})));
  EXPECT_FALSE(
      matches(NonNull, ParamValue(IntVal{32, Signedness::Signed, 0})));
  EXPECT_FALSE(
      matches(NonNull, ParamValue(IntVal{64, Signedness::Signed, 5})));
}

TEST_F(ConstraintTest, VariableBindingAndUnification) {
  // Var 0 constrained to any float type.
  std::vector<ConstraintPtr> Vars = {
      Constraint::anyOf({Constraint::typeEq(Ctx.getFloatType(32)),
                         Constraint::typeEq(Ctx.getFloatType(64))})};
  ConstraintPtr V = Constraint::var(0, "T");

  MatchContext MC(&Vars);
  EXPECT_TRUE(V->matches(ParamValue(Ctx.getFloatType(32)), MC));
  // Second use must be the same value.
  EXPECT_TRUE(V->matches(ParamValue(Ctx.getFloatType(32)), MC));
  EXPECT_FALSE(V->matches(ParamValue(Ctx.getFloatType(64)), MC));

  // A fresh context rejects a binding violating the var's constraint.
  MatchContext MC2(&Vars);
  EXPECT_FALSE(V->matches(ParamValue(Ctx.getIntegerType(32)), MC2));
}

TEST_F(ConstraintTest, AnyOfBacktracksVariableBindings) {
  // AnyOf<pair<T, i32-ish>, pair<T, string>> where the first branch binds
  // T before failing on the second parameter: the binding must roll back.
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  ConstraintPtr T = Constraint::var(0, "T");
  ConstraintPtr Branch1 = Constraint::typeConstraint(
      Pair, {T, Constraint::intKind(32, Signedness::Signless)},
      /*BaseOnly=*/false);
  ConstraintPtr Branch2 = Constraint::typeConstraint(
      Pair, {Constraint::typeEq(Ctx.getFloatType(64)),
             Constraint::stringKind()},
      /*BaseOnly=*/false);
  ConstraintPtr Either = Constraint::anyOf({Branch1, Branch2});

  Type PairTy = Ctx.getType(
      Pair, {ParamValue(Ctx.getFloatType(64)),
             ParamValue(std::string("s"))});
  MatchContext MC(&Vars);
  EXPECT_TRUE(Either->matches(ParamValue(PairTy), MC));
  // T must NOT remain bound from the failed first branch.
  EXPECT_FALSE(MC.getBinding(0).has_value());
}

TEST_F(ConstraintTest, NotDoesNotLeakBindings) {
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  ConstraintPtr NotT =
      Constraint::negation(Constraint::var(0, "T"));
  MatchContext MC(&Vars);
  // Var matches (and binds) inside Not, so Not fails — and the binding is
  // rolled back.
  EXPECT_FALSE(NotT->matches(ParamValue(Ctx.getFloatType(32)), MC));
  EXPECT_FALSE(MC.getBinding(0).has_value());
}

TEST_F(ConstraintTest, CppAndNative) {
  // Bounded integer (Listing 10): uint32_t and <= 32.
  ConstraintPtr Bounded = Constraint::cpp(
      Constraint::intKind(32, Signedness::Unsigned),
      [](const ParamValue &V) { return V.getInt().Value <= 32; },
      "$_self <= 32");
  EXPECT_TRUE(matches(
      Bounded, ParamValue(IntVal{32, Signedness::Unsigned, 16})));
  EXPECT_FALSE(matches(
      Bounded, ParamValue(IntVal{32, Signedness::Unsigned, 64})));
  EXPECT_TRUE(Bounded->requiresCpp());

  ConstraintPtr Native = Constraint::native(
      Constraint::anyParam(),
      [](const ParamValue &V) { return V.isString(); }, "is-string");
  EXPECT_TRUE(matches(Native, ParamValue(std::string("x"))));
  EXPECT_FALSE(matches(Native, ParamValue(IntVal{})));
  EXPECT_TRUE(Native->requiresCpp());
}

TEST_F(ConstraintTest, RequiresCppPropagates) {
  ConstraintPtr Plain = Constraint::typeEq(Ctx.getFloatType(32));
  EXPECT_FALSE(Plain->requiresCpp());
  ConstraintPtr Nested = Constraint::anyOf(
      {Plain, Constraint::cpp(Constraint::anyParam(),
                              [](const ParamValue &) { return true; },
                              "true")});
  EXPECT_TRUE(Nested->requiresCpp());
}

TEST_F(ConstraintTest, ConcreteValueDerivation) {
  MatchContext MC;
  // Fully concrete parametric type.
  ConstraintPtr C = Constraint::typeConstraint(
      Complex, {Constraint::typeEq(Ctx.getFloatType(32))},
      /*BaseOnly=*/false);
  auto V = C->concreteValue(MC);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->getType(), complexOf(Ctx.getFloatType(32)));

  // AnyOf is not derivable.
  ConstraintPtr Either =
      Constraint::anyOf({Constraint::typeEq(Ctx.getFloatType(32)),
                         Constraint::typeEq(Ctx.getFloatType(64))});
  EXPECT_FALSE(Either->concreteValue(MC).has_value());

  // Var derives from its binding.
  std::vector<ConstraintPtr> Vars = {Constraint::anyType()};
  MatchContext MC2(&Vars);
  ConstraintPtr T = Constraint::var(0, "T");
  EXPECT_FALSE(T->concreteValue(MC2).has_value());
  MC2.bind(0, ParamValue(Ctx.getFloatType(64)));
  auto TV = T->concreteValue(MC2);
  ASSERT_TRUE(TV.has_value());
  EXPECT_EQ(TV->getType(), Ctx.getFloatType(64));
}

TEST_F(ConstraintTest, Printing) {
  EXPECT_EQ(Constraint::anyType()->str(), "!AnyType");
  EXPECT_EQ(Constraint::anyAttr()->str(), "#AnyAttr");
  EXPECT_EQ(Constraint::intKind(32, Signedness::Unsigned)->str(),
            "uint32_t");
  EXPECT_EQ(Constraint::intKind(8, Signedness::Signed)->str(), "int8_t");
  EXPECT_EQ(Constraint::stringKind()->str(), "string");
  EXPECT_EQ(Constraint::stringEq("x")->str(), "\"x\"");
  EXPECT_EQ(Constraint::typeConstraint(Complex, {}, true)->str(),
            "!cmath.complex");
  EXPECT_EQ(Constraint::var(3, "T")->str(), "!T");
  ConstraintPtr Combo = Constraint::anyOf(
      {Constraint::typeEq(Ctx.getFloatType(32)),
       Constraint::typeEq(Ctx.getFloatType(64))});
  EXPECT_EQ(Combo->str(), "AnyOf<!builtin.f32, !builtin.f64>");
}

} // namespace
