//===- LoadTest.cpp - End-to-end IRDL dialect loading -------------------===//
///
/// Loads the paper's cmath dialect (dialects/cmath.irdl) and checks the
/// full Section 3 flow: dynamic registration, generated verifiers,
/// declarative formats, optional operands, region terminators, and
/// successor-declared terminators.

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class LoadCmathTest : public ::testing::Test {
protected:
  LoadCmathTest() : Diags(&SrcMgr) {
    Module = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                   "/cmath.irdl",
                          SrcMgr, Diags);
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  Type complexOf(Type Elem) {
    return Ctx.getType(Ctx.resolveTypeDef("cmath.complex"),
                       {ParamValue(Elem)});
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  std::unique_ptr<IRDLModule> Module;
};

TEST_F(LoadCmathTest, LoadsSuccessfully) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  EXPECT_EQ(Module->getDialects().size(), 1u);
  const DialectSpec *Cmath = Module->lookupDialect("cmath");
  ASSERT_NE(Cmath, nullptr);
  EXPECT_EQ(Cmath->Ops.size(), 7u);
  EXPECT_EQ(Cmath->Types.size(), 1u);
  EXPECT_NE(Ctx.lookupDialect("cmath"), nullptr);
  EXPECT_NE(Ctx.resolveTypeDef("cmath.complex"), nullptr);
  EXPECT_NE(Ctx.resolveOpDef("cmath.mul"), nullptr);
}

TEST_F(LoadCmathTest, TypeVerifierFromConstraints) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  TypeDefinition *Complex = Ctx.resolveTypeDef("cmath.complex");
  DiagnosticEngine Local;
  // f32 element: fine.
  Type Good = Ctx.getTypeChecked(
      Complex, {ParamValue(Ctx.getFloatType(32))}, Local);
  EXPECT_TRUE(static_cast<bool>(Good));
  // i32 element: violates !AnyOf<!f32, !f64>.
  Type Bad = Ctx.getTypeChecked(
      Complex, {ParamValue(Ctx.getIntegerType(32))}, Local);
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_TRUE(Local.hadError());
  // Wrong arity.
  Type BadArity = Ctx.getTypeChecked(Complex, {}, Local);
  EXPECT_FALSE(static_cast<bool>(BadArity));
}

TEST_F(LoadCmathTest, ParseConormExample) {
  // Listing 1 of the paper, adapted to the generated custom formats.
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @conorm(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>)
        -> f32 {
      %norm_p = cmath.norm %p : f32
      %norm_q = cmath.norm %q : f32
      %pq = std.mulf %norm_p, %norm_q : f32
      std.return %pq : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();

  // The custom format prints back.
  std::string Text = printOpToString(M.get());
  EXPECT_NE(Text.find("cmath.norm %"), std::string::npos);
  EXPECT_NE(Text.find(" : f32"), std::string::npos);
}

TEST_F(LoadCmathTest, MulFormatRoundTrip) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%p: !cmath.complex<f64>, %q: !cmath.complex<f64>)
        -> !cmath.complex<f64> {
      %r = cmath.mul %p, %q : f64
      std.return %r : !cmath.complex<f64>
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();
  Operation *Mul = nullptr;
  M->walk([&](Operation *Op) {
    if (Op->getName().str() == "cmath.mul")
      Mul = Op;
  });
  ASSERT_NE(Mul, nullptr);
  // Types were inferred from the format: T = complex<f64>.
  EXPECT_EQ(Mul->getResult(0).getType(), complexOf(Ctx.getFloatType(64)));
  EXPECT_EQ(Mul->getOperand(0).getType(), complexOf(Ctx.getFloatType(64)));

  std::string Text = printOpToString(M.get());
  OwningOpRef M2 = parse(Text);
  ASSERT_TRUE(static_cast<bool>(M2)) << Text << "\n" << Diags.renderAll();
  EXPECT_EQ(printOpToString(M2.get()), Text);
}

TEST_F(LoadCmathTest, ConstraintVarRejectsMixedTypes) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  // Build mul with mismatched operand types via the generic form.
  OwningOpRef M = parse(R"(
    std.func @f(%p: !cmath.complex<f32>, %q: !cmath.complex<f64>) {
      %r = "cmath.mul"(%p, %q) :
          (!cmath.complex<f32>, !cmath.complex<f64>)
          -> (!cmath.complex<f32>)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(failed(M->verify(V)));
  EXPECT_NE(V.renderAll().find("does not satisfy constraint"),
            std::string::npos);
}

TEST_F(LoadCmathTest, NormUnifiesElementAndResult) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  // norm of complex<f32> must return f32, not f64.
  OwningOpRef M = parse(R"(
    std.func @f(%p: !cmath.complex<f32>) {
      %r = "cmath.norm"(%p) : (!cmath.complex<f32>) -> (f64)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(failed(M->verify(V)));
}

TEST_F(LoadCmathTest, AttributesVerified) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    %c = cmath.create_constant 1.5 : f32, 2.5 : f32
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();
  Operation &C = M->getRegion(0).front().front();
  EXPECT_EQ(C.getAttr("re"), Ctx.getFloatAttr(1.5, 32));
  EXPECT_EQ(C.getResult(0).getType(), complexOf(Ctx.getFloatType(32)));

  // Wrong attribute kind (f64 where f32_attr expected) fails.
  C.setAttr("im", Ctx.getFloatAttr(2.5, 64));
  EXPECT_TRUE(failed(M->verify(V)));
}

TEST_F(LoadCmathTest, MissingAttributeRejected) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    %c = "cmath.create_constant"() {re = 1.0 : f32}
        : () -> (!cmath.complex<f32>)
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(failed(M->verify(V)));
  EXPECT_NE(V.renderAll().find("requires attribute 'im'"),
            std::string::npos);
}

TEST_F(LoadCmathTest, OptionalOperand) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  // Both arities of cmath.log are accepted (Listing 6).
  OwningOpRef M = parse(R"(
    std.func @f(%c: !cmath.complex<f32>, %b: f32) {
      %l1 = "cmath.log"(%c) : (!cmath.complex<f32>)
          -> (!cmath.complex<f32>)
      %l2 = "cmath.log"(%c, %b) : (!cmath.complex<f32>, f32)
          -> (!cmath.complex<f32>)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();

  // Three operands exceed the optional's budget.
  OwningOpRef Bad = parse(R"(
    std.func @f(%c: !cmath.complex<f32>, %b: f32) {
      %l = "cmath.log"(%c, %b, %b) : (!cmath.complex<f32>, f32, f32)
          -> (!cmath.complex<f32>)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  EXPECT_TRUE(failed(Bad->verify(V)));
}

TEST_F(LoadCmathTest, RegionTerminatorChecked) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%lo: i32, %hi: i32, %step: i32) {
      "cmath.range_loop"(%lo, %hi, %step) ({
      ^bb0(%iv: i32):
        "cmath.range_loop_terminator"() : () -> ()
      }) : (i32, i32, i32) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();

  // Wrong induction-variable type.
  OwningOpRef Bad = parse(R"(
    std.func @f(%lo: i32, %hi: i32, %step: i32) {
      "cmath.range_loop"(%lo, %hi, %step) ({
      ^bb0(%iv: f32):
        "cmath.range_loop_terminator"() : () -> ()
      }) : (i32, i32, i32) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  EXPECT_TRUE(failed(Bad->verify(V)));
}

TEST_F(LoadCmathTest, MissingTerminatorRejected) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%lo: i32) {
      "cmath.range_loop"(%lo, %lo, %lo) ({
      ^bb0(%iv: i32):
        %x = "cmath.create_constant"() {re = 1.0 : f32, im = 0.0 : f32}
            : () -> (!cmath.complex<f32>)
      }) : (i32, i32, i32) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(failed(M->verify(V)));
  EXPECT_NE(V.renderAll().find("must end with"), std::string::npos);
}

TEST_F(LoadCmathTest, SuccessorsMakeTerminator) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  const OpDefinition *CondBr = Ctx.resolveOpDef("cmath.conditional_branch");
  ASSERT_NE(CondBr, nullptr);
  EXPECT_TRUE(CondBr->isTerminator());
  EXPECT_EQ(CondBr->getNumSuccessors(), 2u);

  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      "cmath.conditional_branch"(%c)[^t, ^f] : (i1) -> ()
    ^t:
      std.return
    ^f:
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();
}

TEST_F(LoadCmathTest, SpecClassification) {
  ASSERT_TRUE(Module != nullptr) << Diags.renderAll();
  const DialectSpec *Cmath = Module->lookupDialect("cmath");
  ASSERT_NE(Cmath, nullptr);
  // Everything in cmath is expressible without IRDL-C++.
  for (const OpSpec &Op : Cmath->Ops) {
    EXPECT_TRUE(Op.localConstraintsInIRDL()) << Op.Name;
    EXPECT_FALSE(Op.requiresCppVerifier()) << Op.Name;
  }
  for (const TypeOrAttrSpec &T : Cmath->Types)
    EXPECT_FALSE(T.requiresCppVerifier() || T.requiresCppParams());
}

} // namespace
