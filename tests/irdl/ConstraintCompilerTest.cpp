//===- ConstraintCompilerTest.cpp - Tree vs compiled programs ----------===//
///
/// The compiled engine's contract is semantic identity with the tree
/// interpreter (the reference oracle). These tests compile constraint
/// trees and check verdicts, variable bindings, dispatch-table lowering,
/// the memoized verification cache, and concreteValue against the tree
/// over a grid of values.

#include "irdl/ConstraintCompiler.h"
#include "irdl/ConstraintProfiler.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class ConstraintCompilerTest : public ::testing::Test {
protected:
  ConstraintCompilerTest() {
    Dialect *D = Ctx.getOrCreateDialect("cmath");
    Complex = D->addType("complex");
    Complex->setParamNames({"elementType"});
    Pair = D->addType("pair");
    Pair->setParamNames({"first", "second"});
  }

  Type complexOf(Type Elem) {
    return Ctx.getType(Complex, {ParamValue(Elem)});
  }

  /// A value grid covering every ParamValue kind the algebra can see.
  std::vector<ParamValue> grid() {
    std::vector<ParamValue> Vs;
    Vs.emplace_back(Ctx.getFloatType(32));
    Vs.emplace_back(Ctx.getFloatType(64));
    Vs.emplace_back(complexOf(Ctx.getFloatType(32)));
    Vs.emplace_back(complexOf(Ctx.getFloatType(64)));
    Vs.emplace_back(Ctx.getType(Pair, {ParamValue(Ctx.getFloatType(32)),
                                       ParamValue(Ctx.getFloatType(64))}));
    Vs.emplace_back(Ctx.getIntegerAttr(1, 32));
    Vs.emplace_back(IntVal{32, Signedness::Signed, 3});
    Vs.emplace_back(IntVal{64, Signedness::Unsigned, 3});
    Vs.emplace_back(FloatVal{32, 1.5});
    Vs.emplace_back(FloatVal{64, 2.5});
    Vs.emplace_back(std::string("foo"));
    Vs.emplace_back(std::string("bar"));
    Vs.emplace_back(EnumVal{Ctx.getSignednessEnum(), 0});
    Vs.emplace_back(EnumVal{Ctx.getSignednessEnum(), 1});
    Vs.emplace_back(std::vector<ParamValue>{});
    Vs.emplace_back(std::vector<ParamValue>{
        ParamValue(IntVal{32, Signedness::Signless, 1}),
        ParamValue(IntVal{32, Signedness::Signless, 2})});
    return Vs;
  }

  /// Asserts that the compiled program agrees with the tree on every
  /// grid value: verdict and resulting variable bindings.
  void expectEquivalent(const ConstraintPtr &C,
                        const std::vector<ConstraintPtr> *Vars = nullptr) {
    std::vector<ConstraintProgramPtr> VarProgs =
        Vars ? ConstraintCompiler::compileVarPrograms(*Vars)
             : std::vector<ConstraintProgramPtr>();
    ConstraintProgramPtr Prog = ConstraintCompiler::compile(C, VarProgs);
    for (const ParamValue &V : grid()) {
      MatchContext TreeMC(Vars);
      MatchContext ProgMC(Vars);
      bool TreeVerdict = C->matches(V, TreeMC);
      bool ProgVerdict = Prog->run(V, ProgMC);
      EXPECT_EQ(TreeVerdict, ProgVerdict)
          << "verdict diverged on " << C->str() << " / program:\n"
          << Prog->dump();
      for (unsigned I = 0, E = TreeMC.getNumVars(); I != E; ++I) {
        ASSERT_EQ(TreeMC.getBinding(I).has_value(),
                  ProgMC.getBinding(I).has_value());
        if (TreeMC.getBinding(I))
          EXPECT_TRUE(*TreeMC.getBinding(I) == *ProgMC.getBinding(I));
      }
    }
  }

  IRContext Ctx;
  TypeDefinition *Complex = nullptr;
  TypeDefinition *Pair = nullptr;
};

TEST_F(ConstraintCompilerTest, LeafEquivalence) {
  expectEquivalent(Constraint::anyType());
  expectEquivalent(Constraint::anyAttr());
  expectEquivalent(Constraint::anyParam());
  expectEquivalent(Constraint::typeEq(Ctx.getFloatType(32)));
  expectEquivalent(Constraint::intKind(32, Signedness::Signed));
  expectEquivalent(Constraint::intEq(IntVal{32, Signedness::Signed, 3}));
  expectEquivalent(Constraint::floatKind(32));
  expectEquivalent(Constraint::floatKind(0));
  expectEquivalent(Constraint::floatEq(FloatVal{32, 1.5}));
  expectEquivalent(Constraint::stringKind());
  expectEquivalent(Constraint::stringEq("foo"));
  expectEquivalent(Constraint::enumKind(Ctx.getSignednessEnum()));
  expectEquivalent(
      Constraint::enumEq(EnumVal{Ctx.getSignednessEnum(), 1}));
  expectEquivalent(Constraint::anyArray());
  expectEquivalent(
      Constraint::arrayOf(Constraint::intKind(32, Signedness::Signless)));
  expectEquivalent(Constraint::arrayExact(
      {Constraint::intEq(IntVal{32, Signedness::Signless, 1}),
       Constraint::intEq(IntVal{32, Signedness::Signless, 2})}));
  expectEquivalent(Constraint::opaqueKind("cmath.custom"));
}

TEST_F(ConstraintCompilerTest, CombinatorEquivalence) {
  ConstraintPtr F32 = Constraint::typeEq(Ctx.getFloatType(32));
  ConstraintPtr F64 = Constraint::typeEq(Ctx.getFloatType(64));
  ConstraintPtr CpxBase =
      Constraint::typeConstraint(Complex, {}, /*BaseOnly=*/true);
  ConstraintPtr CpxF32 = Constraint::typeConstraint(
      Complex, {Constraint::typeEq(Ctx.getFloatType(32))},
      /*BaseOnly=*/false);
  expectEquivalent(Constraint::anyOf({F32, F64}));
  expectEquivalent(Constraint::anyOf({CpxF32, F32}));
  expectEquivalent(Constraint::conjunction({CpxBase, CpxF32}));
  expectEquivalent(Constraint::negation(F32));
  expectEquivalent(Constraint::negation(Constraint::anyOf({F32, CpxF32})));
  expectEquivalent(Constraint::named(CpxF32, "cmath.ComplexF32"));
}

TEST_F(ConstraintCompilerTest, CppAndNativeEquivalence) {
  ConstraintPtr OnlyF32 = Constraint::native(
      Constraint::anyType(),
      [](const ParamValue &V) {
        return V.isType() && V.getType().getParams().empty();
      },
      "paramless");
  expectEquivalent(OnlyF32);
  ConstraintPtr Cpp = Constraint::cpp(
      Constraint::anyType(), [](const ParamValue &) { return true; },
      "true");
  expectEquivalent(Cpp);
}

TEST_F(ConstraintCompilerTest, VariableEquivalence) {
  // AnyOf<complex<!T>, !T> where T: AnyType — exercises bind + backtrack.
  std::vector<ConstraintPtr> Vars{Constraint::anyType()};
  ConstraintPtr T = Constraint::var(0, "T");
  ConstraintPtr CpxT =
      Constraint::typeConstraint(Complex, {T}, /*BaseOnly=*/false);
  expectEquivalent(Constraint::anyOf({CpxT, T}), &Vars);
  expectEquivalent(Constraint::conjunction({Constraint::anyType(), T}),
                   &Vars);
}

TEST_F(ConstraintCompilerTest, FailedAnyOfBranchUnbindsVariables) {
  // First alternative binds T then fails on the second conjunct; the
  // trail must unbind T so the second alternative sees it fresh.
  std::vector<ConstraintPtr> Vars{Constraint::anyType()};
  ConstraintPtr T = Constraint::var(0, "T");
  ConstraintPtr Failing = Constraint::conjunction(
      {T, Constraint::typeEq(Ctx.getFloatType(64))});
  ConstraintPtr C = Constraint::anyOf({Failing, T});
  expectEquivalent(C, &Vars);

  std::vector<ConstraintProgramPtr> VarProgs =
      ConstraintCompiler::compileVarPrograms(Vars);
  ConstraintProgramPtr Prog = ConstraintCompiler::compile(C, VarProgs);
  MatchContext MC(&Vars);
  EXPECT_TRUE(Prog->run(ParamValue(Ctx.getFloatType(32)), MC));
  ASSERT_TRUE(MC.getBinding(0).has_value());
  EXPECT_TRUE(MC.getBinding(0)->getType() == Ctx.getFloatType(32));
}

TEST_F(ConstraintCompilerTest, NamedWrappersAreElided) {
  ConstraintPtr Inner = Constraint::typeEq(Ctx.getFloatType(32));
  ConstraintPtr Named = Constraint::named(Inner, "cmath.F32");
  ConstraintProgramPtr Prog = ConstraintCompiler::compile(Named);
  ConstraintProgramPtr Direct = ConstraintCompiler::compile(Inner);
  EXPECT_EQ(Prog->getNumInstrs(), Direct->getNumInstrs());
}

TEST_F(ConstraintCompilerTest, AnyOfLowersToDispatchTable) {
  std::vector<ConstraintPtr> Alts;
  std::vector<Type> Elems = {Ctx.getFloatType(16), Ctx.getFloatType(32),
                             Ctx.getFloatType(64)};
  for (Type E : Elems)
    Alts.push_back(Constraint::typeEq(complexOf(E)));
  Alts.push_back(Constraint::typeEq(Ctx.getFloatType(32)));
  ConstraintPtr C = Constraint::anyOf(Alts);
  ConstraintProgramPtr Prog = ConstraintCompiler::compile(C);
  ASSERT_EQ(Prog->getNumDispatchTables(), 1u);
  EXPECT_EQ(Prog->getInstr(0).Op, COpcode::AnyOfTable);
  expectEquivalent(C);
}

TEST_F(ConstraintCompilerTest, AnyOfWithUndispatchableAltStaysSequential) {
  std::vector<ConstraintPtr> Alts = {
      Constraint::typeEq(complexOf(Ctx.getFloatType(16))),
      Constraint::typeEq(complexOf(Ctx.getFloatType(32))),
      Constraint::typeEq(complexOf(Ctx.getFloatType(64))),
      Constraint::anyType()}; // not rooted in a definition
  ConstraintProgramPtr Prog =
      ConstraintCompiler::compile(Constraint::anyOf(Alts));
  EXPECT_EQ(Prog->getNumDispatchTables(), 0u);
  EXPECT_EQ(Prog->getInstr(0).Op, COpcode::AnyOf);
}

TEST_F(ConstraintCompilerTest, SameDefAlternativesKeepSourceOrder) {
  // Two alternatives under the same base definition must still be tried
  // in declaration order through the table.
  std::vector<ConstraintPtr> Alts = {
      Constraint::typeEq(complexOf(Ctx.getFloatType(32))),
      Constraint::typeConstraint(Complex, {}, /*BaseOnly=*/true),
      Constraint::typeEq(Ctx.getFloatType(32)),
      Constraint::typeEq(Ctx.getFloatType(64))};
  ConstraintPtr C = Constraint::anyOf(Alts);
  ConstraintProgramPtr Prog = ConstraintCompiler::compile(C);
  ASSERT_EQ(Prog->getNumDispatchTables(), 1u);
  expectEquivalent(C);
  MatchContext MC;
  EXPECT_TRUE(
      Prog->run(ParamValue(complexOf(Ctx.getFloatType(64))), MC));
}

TEST_F(ConstraintCompilerTest, MemoCachesVarFreeSubprograms) {
  // complex<AnyOf<f32, f64>> is variable-free and big enough to memoize.
  ConstraintPtr C = Constraint::typeConstraint(
      Complex,
      {Constraint::anyOf({Constraint::typeEq(Ctx.getFloatType(32)),
                          Constraint::typeEq(Ctx.getFloatType(64))})},
      /*BaseOnly=*/false);
  ConstraintProgramPtr Prog = ConstraintCompiler::compile(C);
  ASSERT_TRUE(Prog->getInstr(0).Flags & CInstr::FlagMemo);
  EXPECT_EQ(Prog->getMemoCacheSize(), 0u);

  MatchContext MC;
  ParamValue V(complexOf(Ctx.getFloatType(32)));
  EXPECT_TRUE(Prog->run(V, MC));
  size_t AfterFirst = Prog->getMemoCacheSize();
  EXPECT_GT(AfterFirst, 0u);
  // Same uniqued value again: verdict comes from the cache, no growth.
  EXPECT_TRUE(Prog->run(V, MC));
  EXPECT_EQ(Prog->getMemoCacheSize(), AfterFirst);
  // Negative verdicts are cached too.
  ParamValue Bad(complexOf(Ctx.getFloatType(16)));
  EXPECT_FALSE(Prog->run(Bad, MC));
  EXPECT_FALSE(Prog->run(Bad, MC));
  EXPECT_GT(Prog->getMemoCacheSize(), AfterFirst);

  Prog->clearMemoCache();
  EXPECT_EQ(Prog->getMemoCacheSize(), 0u);
  EXPECT_TRUE(Prog->run(V, MC));
}

TEST_F(ConstraintCompilerTest, VarSubprogramsAreNotMemoized) {
  std::vector<ConstraintPtr> Vars{Constraint::anyType()};
  ConstraintPtr C = Constraint::typeConstraint(
      Complex,
      {Constraint::anyOf({Constraint::var(0, "T"),
                          Constraint::typeEq(Ctx.getFloatType(64))})},
      /*BaseOnly=*/false);
  ConstraintProgramPtr Prog = ConstraintCompiler::compile(
      C, ConstraintCompiler::compileVarPrograms(Vars));
  for (size_t I = 0, E = Prog->getNumInstrs(); I != E; ++I)
    EXPECT_FALSE(Prog->getInstr(I).Flags & CInstr::FlagMemo)
        << "instr " << I << " of a var-referencing program is memoized";
}

TEST_F(ConstraintCompilerTest, CppSubprogramsAreNotMemoized) {
  ConstraintPtr C = Constraint::typeConstraint(
      Complex,
      {Constraint::native(
          Constraint::anyOf({Constraint::typeEq(Ctx.getFloatType(32)),
                             Constraint::typeEq(Ctx.getFloatType(64))}),
          [](const ParamValue &) { return true; }, "always")},
      /*BaseOnly=*/false);
  ConstraintProgramPtr Prog = ConstraintCompiler::compile(C);
  for (size_t I = 0, E = Prog->getNumInstrs(); I != E; ++I)
    EXPECT_FALSE(Prog->getInstr(I).Flags & CInstr::FlagMemo);
}

TEST_F(ConstraintCompilerTest, ConcreteValueEquivalence) {
  std::vector<ConstraintPtr> Vars{Constraint::anyType()};
  std::vector<ConstraintPtr> Cases = {
      Constraint::typeEq(complexOf(Ctx.getFloatType(32))),
      Constraint::intEq(IntVal{32, Signedness::Signed, 3}),
      Constraint::floatEq(FloatVal{32, 1.5}),
      Constraint::stringEq("foo"),
      Constraint::enumEq(EnumVal{Ctx.getSignednessEnum(), 1}),
      Constraint::arrayExact(
          {Constraint::intEq(IntVal{32, Signedness::Signless, 1})}),
      Constraint::conjunction(
          {Constraint::anyType(), Constraint::typeEq(Ctx.getFloatType(32))}),
      Constraint::anyOf({Constraint::typeEq(Ctx.getFloatType(32)),
                         Constraint::typeEq(Ctx.getFloatType(64))}),
      Constraint::typeConstraint(Complex, {}, /*BaseOnly=*/true),
      Constraint::var(0, "T"),
      Constraint::anyType(),
  };
  for (const ConstraintPtr &C : Cases) {
    ConstraintProgramPtr Prog = ConstraintCompiler::compile(
        C, ConstraintCompiler::compileVarPrograms(Vars));
    MatchContext MC(&Vars);
    if (C->getKind() == Constraint::Kind::Var)
      MC.bind(0, ParamValue(Ctx.getFloatType(64)));
    auto TreeV = C->concreteValue(MC);
    auto ProgV = Prog->concreteValue(MC);
    ASSERT_EQ(TreeV.has_value(), ProgV.has_value()) << C->str();
    if (TreeV)
      EXPECT_TRUE(*TreeV == *ProgV) << C->str();
  }
}

TEST_F(ConstraintCompilerTest, DumpNamesEveryInstruction) {
  ConstraintPtr C = Constraint::anyOf(
      {Constraint::typeEq(complexOf(Ctx.getFloatType(32))),
       Constraint::typeEq(Ctx.getFloatType(32))});
  ConstraintProgramPtr Prog = ConstraintCompiler::compile(C);
  std::string D = Prog->dump();
  EXPECT_NE(D.find("AnyOf"), std::string::npos);
  EXPECT_NE(D.find("TypeParams"), std::string::npos);
  EXPECT_NE(D.find("cmath.complex"), std::string::npos);
}

TEST_F(ConstraintCompilerTest, ProgramIdsAreUnique) {
  ConstraintProgramPtr A = ConstraintCompiler::compile(Constraint::anyType());
  ConstraintProgramPtr B = ConstraintCompiler::compile(Constraint::anyType());
  EXPECT_NE(A->getId(), B->getId());
}

TEST_F(ConstraintCompilerTest, EngineFlagDefaultsOn) {
  EXPECT_TRUE(compiledConstraintsEnabled());
  setCompiledConstraintsEnabled(false);
  EXPECT_FALSE(compiledConstraintsEnabled());
  setCompiledConstraintsEnabled(true);
  EXPECT_TRUE(compiledConstraintsEnabled());
}

TEST_F(ConstraintCompilerTest, ProfilerAttributesExecutions) {
  ConstraintProfiler &Prof = ConstraintProfiler::instance();
  Prof.reset();
  ConstraintProgramPtr Prog = ConstraintCompiler::compile(
      Constraint::anyOf({Constraint::typeEq(Ctx.getFloatType(32)),
                         Constraint::typeEq(Ctx.getFloatType(64))}));
  Prof.registerProgram(Prog, "test.prof anyof");

  // Off by default: runs leave the counters untouched.
  EXPECT_FALSE(constraintProfilingEnabled());
  {
    MatchContext MC;
    EXPECT_TRUE(Prog->run(ParamValue(Ctx.getFloatType(32)), MC));
  }
  EXPECT_EQ(Prog->getProfiledEvals(), 0u);

  setConstraintProfilingEnabled(true);
  constexpr uint64_t Runs = 25;
  for (uint64_t I = 0; I != Runs; ++I) {
    MatchContext MC;
    EXPECT_TRUE(Prog->run(ParamValue(Ctx.getFloatType(64)), MC));
  }
  setConstraintProfilingEnabled(false);

  EXPECT_EQ(Prog->getProfiledEvals(), Runs);
  std::vector<ConstraintProfiler::Entry> Entries = Prof.collect();
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].Name, "test.prof anyof");
  EXPECT_EQ(Entries[0].ProgramId, Prog->getId());
  EXPECT_EQ(Entries[0].Evals, Runs);
  EXPECT_EQ(Entries[0].Nanos, Prog->getProfiledNanos());

  std::string Report = Prof.renderReport();
  EXPECT_NE(Report.find("test.prof anyof"), std::string::npos) << Report;
  std::string Json = Prof.renderJson();
  EXPECT_NE(Json.find("\"name\":\"test.prof anyof\""), std::string::npos)
      << Json;

  // reset() zeroes live programs so the next test starts clean.
  Prof.reset();
  EXPECT_EQ(Prog->getProfiledEvals(), 0u);
  EXPECT_TRUE(Prof.collect().empty());
}

} // namespace
