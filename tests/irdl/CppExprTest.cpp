//===- CppExprTest.cpp - The IRDL-C++ expression interpreter ------------===//

#include "irdl/CppExpr.h"

#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class CppExprTest : public ::testing::Test {
protected:
  std::shared_ptr<const CppExpr> compile(std::string_view Src) {
    return CppExpr::parse(Src, Diags);
  }

  /// Evaluates with $_self bound to an integer parameter value.
  std::optional<bool> evalWithInt(std::string_view Src, int64_t Value) {
    auto E = compile(Src);
    if (!E)
      return std::nullopt;
    CppExpr::EvalContext Ctx;
    Ctx.Self = cppEvalFromParam(ParamValue(IntVal{32, {}, Value}));
    return E->evaluateBool(Ctx);
  }

  DiagnosticEngine Diags;
};

TEST_F(CppExprTest, Literals) {
  CppExpr::EvalContext Ctx;
  auto E = compile("3 + 4 * 2 == 11");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->evaluateBool(Ctx), true);

  EXPECT_EQ(compile("10 / 3 == 3")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("10 % 3 == 1")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("2.5 * 2.0 == 5.0")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("\"abc\" == \"abc\"")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("\"abc\" != \"abd\"")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("true && !false")->evaluateBool(Ctx), true);
}

TEST_F(CppExprTest, Precedence) {
  CppExpr::EvalContext Ctx;
  EXPECT_EQ(compile("1 + 2 * 3 == 7")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("(1 + 2) * 3 == 9")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("1 < 2 && 2 < 3 || false")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("-3 + 5 == 2")->evaluateBool(Ctx), true);
}

TEST_F(CppExprTest, SelfAsParameter) {
  // The paper's BoundedInteger: "$_self <= 32".
  EXPECT_EQ(evalWithInt("$_self <= 32", 16), true);
  EXPECT_EQ(evalWithInt("$_self <= 32", 64), false);
  EXPECT_EQ(evalWithInt("$_self % 2 == 0", 8), true);
  EXPECT_EQ(evalWithInt("$_self % 2 == 0", 9), false);
}

TEST_F(CppExprTest, ShortCircuit) {
  // Division by zero would fail; short-circuiting avoids it.
  EXPECT_EQ(evalWithInt("$_self == 0 || 10 / $_self > 1", 0), true);
  EXPECT_EQ(evalWithInt("$_self != 0 && 10 / $_self >= 5", 2), true);
  // Without short-circuit this evaluates the division and fails.
  EXPECT_EQ(evalWithInt("10 / $_self > 1", 0), std::nullopt);
}

TEST_F(CppExprTest, ParseErrors) {
  EXPECT_EQ(compile("3 +"), nullptr);
  EXPECT_TRUE(Diags.hadError());
  Diags.clear();
  EXPECT_EQ(compile("$_other"), nullptr);
  Diags.clear();
  EXPECT_EQ(compile("(1 + 2"), nullptr);
  Diags.clear();
  EXPECT_EQ(compile("3 3"), nullptr);
}

TEST_F(CppExprTest, TypeErrorsYieldNullopt) {
  CppExpr::EvalContext Ctx;
  // Comparing string with < is unsupported.
  EXPECT_EQ(compile("\"a\" < \"b\"")->evaluateBool(Ctx), std::nullopt);
  // Unknown accessor.
  EXPECT_EQ(evalWithInt("$_self.bogus() == 1", 3), std::nullopt);
}

TEST_F(CppExprTest, StringAccessors) {
  auto E = compile("$_self.size() == 3 && !$_self.empty()");
  ASSERT_NE(E, nullptr);
  CppExpr::EvalContext Ctx;
  Ctx.Self = cppEvalFromParam(ParamValue(std::string("abc")));
  EXPECT_EQ(E->evaluateBool(Ctx), true);
  Ctx.Self = cppEvalFromParam(ParamValue(std::string("abcd")));
  EXPECT_EQ(E->evaluateBool(Ctx), false);
}

TEST_F(CppExprTest, ParamRecordAccess) {
  // $_self as the parameter record of a type under verification.
  IRContext IRCtx;
  Dialect *D = IRCtx.getOrCreateDialect("v");
  TypeDefinition *Vec = D->addType("vector");
  Vec->setParamNames({"elem", "size"});
  std::vector<ParamValue> Params = {ParamValue(IRCtx.getFloatType(32)),
                                    ParamValue(IntVal{32, {}, 4})};
  CppExpr::EvalContext Ctx;
  Ctx.Self = CppEvalValue(ParamRecord{Vec, &Params});

  EXPECT_EQ(compile("$_self.size == 4")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("$_self.size() <= 32")->evaluateBool(Ctx), true);
  EXPECT_EQ(compile("$_self.size > 4")->evaluateBool(Ctx), false);
}

TEST_F(CppExprTest, OperationAccessors) {
  // The paper's append_vector invariant:
  //   $_self.lhs().size() + $_self.rhs().size() == $_self.res().size()
  IRContext IRCtx;
  SourceMgr SrcMgr;
  DiagnosticEngine LoadDiags(&SrcMgr);
  auto Module = loadIRDL(IRCtx, R"irdl(
    Dialect vec {
      Type vector {
        Parameters (elem: !AnyType, size: uint32_t)
      }
      Operation append {
        Operands (lhs: !vector, rhs: !vector)
        Results (res: !vector)
        CppConstraint "$_self.lhs().size() + $_self.rhs().size() ==
                       $_self.res().size()"
      }
    }
  )irdl",
                         SrcMgr, LoadDiags);
  ASSERT_NE(Module, nullptr) << LoadDiags.renderAll();

  TypeDefinition *Vec = IRCtx.resolveTypeDef("vec.vector");
  auto VecTy = [&](int64_t N) {
    return IRCtx.getType(
        Vec, {ParamValue(IRCtx.getFloatType(32)),
              ParamValue(IntVal{32, Signedness::Unsigned, N})});
  };

  // Build append(v2, v3) -> v5 (valid) and -> v6 (invalid).
  auto Build = [&](int64_t ResSize) {
    OperationState SL(IRCtx, IRCtx.resolveOpDef("vec.append"));
    // Source ops for operands.
    Dialect *T = IRCtx.getOrCreateDialect("tst");
    static int Counter = 0;
    OpDefinition *Src = T->lookupOp("src") ? T->lookupOp("src")
                                           : T->addOp("src");
    (void)Counter;
    OperationState S1(IRCtx, Src), S2(IRCtx, Src);
    S1.ResultTypes = {VecTy(2)};
    S2.ResultTypes = {VecTy(3)};
    Operation *O1 = Operation::create(S1);
    Operation *O2 = Operation::create(S2);
    SL.Operands = {O1->getResult(0), O2->getResult(0)};
    SL.ResultTypes = {VecTy(ResSize)};
    Operation *App = Operation::create(SL);
    return std::make_tuple(O1, O2, App);
  };

  {
    auto [O1, O2, App] = Build(5);
    DiagnosticEngine V;
    EXPECT_TRUE(succeeded(App->getDef()->getVerifier()(App, V)))
        << V.renderAll();
    App->destroy();
    O1->destroy();
    O2->destroy();
  }
  {
    auto [O1, O2, App] = Build(6);
    DiagnosticEngine V;
    EXPECT_TRUE(failed(App->getDef()->getVerifier()(App, V)));
    EXPECT_NE(V.renderAll().find("IRDL-C++"), std::string::npos);
    App->destroy();
    O1->destroy();
    O2->destroy();
  }
}

} // namespace
