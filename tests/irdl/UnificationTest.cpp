//===- UnificationTest.cpp - Constraint variables across directives -------===//
///
/// Constraint variables unify across *all* of an operation's directives:
/// operands, results, attributes, and region arguments share one binding
/// environment (Section 4.6).

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class UnificationTest : public ::testing::Test {
protected:
  UnificationTest() : Diags(&SrcMgr) {
    Module = loadIRDL(Ctx, R"(
      Dialect u {
        Operation loop_like {
          ConstraintVar (!T: !AnyType)
          Operands (init: !T)
          Results (res: !T)
          Region body {
            Arguments (carried: !T)
          }
          Summary "Region argument type must match the operand type"
        }
        Operation typed_attr {
          ConstraintVar (!T: !AnyType)
          Operands (v: !T)
          Attributes (ty: #builtin.type<T>)
          Summary "Attribute must wrap the operand's exact type"
        }
      }
    )",
                      SrcMgr, Diags);
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  std::unique_ptr<IRDLModule> Module;
};

TEST_F(UnificationTest, RegionArgumentUnifiesWithOperand) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef Good = parse(R"(
    std.func @f(%x: f32) {
      %r = "u.loop_like"(%x) ({
      ^bb0(%carried: f32):
        "std.return"() : () -> ()
      }) : (f32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Good)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(Good->verify(V))) << V.renderAll();

  // The region argument type diverges from the operand type: rejected.
  OwningOpRef Bad = parse(R"(
    std.func @f(%x: f32) {
      %r = "u.loop_like"(%x) ({
      ^bb0(%carried: i32):
        "std.return"() : () -> ()
      }) : (f32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  DiagnosticEngine V2;
  EXPECT_TRUE(failed(Bad->verify(V2)));
  EXPECT_NE(V2.renderAll().find("argument 'carried'"), std::string::npos);
}

TEST_F(UnificationTest, ResultMustFollowOperandBinding) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef Bad = parse(R"(
    std.func @f(%x: f32) {
      %r = "u.loop_like"(%x) ({
      ^bb0(%carried: f32):
        "std.return"() : () -> ()
      }) : (f32) -> (i32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(failed(Bad->verify(V)));
  EXPECT_NE(V.renderAll().find("result 'res'"), std::string::npos);
}

TEST_F(UnificationTest, AttributeParameterUnifiesWithOperandType) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  // ty must be a type attribute wrapping exactly the operand's type.
  OwningOpRef Good = parse(R"(
    std.func @f(%x: i64) {
      "u.typed_attr"(%x) {ty = i64} : (i64) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Good)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(Good->verify(V))) << V.renderAll();

  OwningOpRef Bad = parse(R"(
    std.func @f(%x: i64) {
      "u.typed_attr"(%x) {ty = f32} : (i64) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  DiagnosticEngine V2;
  EXPECT_TRUE(failed(Bad->verify(V2)));
  EXPECT_NE(V2.renderAll().find("attribute 'ty'"), std::string::npos);
}

TEST_F(UnificationTest, VariadicGroupSharesOneBinding) {
  DiagnosticEngine LocalDiags(&SrcMgr);
  auto M2 = loadIRDL(Ctx, R"(
    Dialect u2 {
      Operation concat {
        ConstraintVar (!T: !AnyType)
        Operands (parts: Variadic<!T>)
        Results (res: !T)
      }
    }
  )",
                     SrcMgr, LocalDiags);
  ASSERT_NE(M2, nullptr) << LocalDiags.renderAll();

  OwningOpRef Good = parse(R"(
    std.func @f(%a: f32, %b: f32) {
      %r = "u2.concat"(%a, %b) : (f32, f32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Good)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(Good->verify(V))) << V.renderAll();

  // Mixed element types inside the variadic group: rejected.
  OwningOpRef Bad = parse(R"(
    std.func @f(%a: f32, %b: i32) {
      %r = "u2.concat"(%a, %b) : (f32, i32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  DiagnosticEngine V2;
  EXPECT_TRUE(failed(Bad->verify(V2)));
}

} // namespace
