//===- IRDLParserTest.cpp - AST-level parser tests ----------------------===//

#include "irdl/IRDLParser.h"

#include <gtest/gtest.h>

using namespace irdl;
using namespace irdl::ast;

namespace {

class IRDLParserTest : public ::testing::Test {
protected:
  std::vector<DialectDecl> parse(std::string_view Src) {
    return parseIRDL(Src, Diags);
  }

  DiagnosticEngine Diags;
};

TEST_F(IRDLParserTest, EmptyDialect) {
  auto Dialects = parse("Dialect cmath { }");
  ASSERT_EQ(Dialects.size(), 1u);
  EXPECT_EQ(Dialects[0].Name, "cmath");
  EXPECT_TRUE(Dialects[0].Ops.empty());
}

TEST_F(IRDLParserTest, MultipleDialects) {
  auto Dialects = parse("Dialect a { } Dialect b { }");
  ASSERT_EQ(Dialects.size(), 2u);
  EXPECT_EQ(Dialects[1].Name, "b");
}

TEST_F(IRDLParserTest, TypeWithParameters) {
  auto Dialects = parse(R"(
    Dialect cmath {
      Type complex {
        Parameters (elementType: !FloatType)
        Summary "A complex number"
      }
    }
  )");
  ASSERT_EQ(Dialects.size(), 1u);
  ASSERT_EQ(Dialects[0].TypesAndAttrs.size(), 1u);
  const TypeOrAttrDecl &T = Dialects[0].TypesAndAttrs[0];
  EXPECT_FALSE(T.IsAttr);
  EXPECT_EQ(T.Name, "complex");
  ASSERT_EQ(T.Params.size(), 1u);
  EXPECT_EQ(T.Params[0].Name, "elementType");
  EXPECT_EQ(T.Params[0].Constr->K, ConstraintExpr::Kind::Ref);
  EXPECT_EQ(T.Params[0].Constr->Sigil, '!');
  EXPECT_EQ(T.Params[0].Constr->Path,
            std::vector<std::string>{"FloatType"});
  EXPECT_EQ(T.Summary, "A complex number");
}

TEST_F(IRDLParserTest, OperationFull) {
  auto Dialects = parse(R"(
    Dialect cmath {
      Operation mul {
        ConstraintVar (!T: !complex<FloatType>)
        Operands (lhs: !T, rhs: !T)
        Results (res: !T)
        Format "$lhs, $rhs : $T.elementType"
        Summary "Multiply two complex numbers"
      }
    }
  )");
  ASSERT_EQ(Dialects.size(), 1u);
  ASSERT_EQ(Dialects[0].Ops.size(), 1u);
  const OpDecl &Op = Dialects[0].Ops[0];
  EXPECT_EQ(Op.Name, "mul");
  ASSERT_EQ(Op.ConstraintVars.size(), 1u);
  EXPECT_EQ(Op.ConstraintVars[0].Name, "T");
  EXPECT_TRUE(Op.ConstraintVars[0].Constr->HasArgs);
  ASSERT_EQ(Op.Operands.size(), 2u);
  EXPECT_EQ(Op.Operands[0].Name, "lhs");
  ASSERT_EQ(Op.Results.size(), 1u);
  EXPECT_TRUE(Op.HasFormat);
  EXPECT_EQ(Op.Format, "$lhs, $rhs : $T.elementType");
  EXPECT_FALSE(Op.Successors.has_value());
}

TEST_F(IRDLParserTest, SuccessorsEvenEmptyRecorded) {
  auto Dialects = parse(R"(
    Dialect d {
      Operation term { Successors () }
      Operation br { Successors (next) }
      Operation plain { }
    }
  )");
  ASSERT_EQ(Dialects.size(), 1u);
  const auto &Ops = Dialects[0].Ops;
  ASSERT_EQ(Ops.size(), 3u);
  ASSERT_TRUE(Ops[0].Successors.has_value());
  EXPECT_TRUE(Ops[0].Successors->empty());
  ASSERT_TRUE(Ops[1].Successors.has_value());
  EXPECT_EQ(Ops[1].Successors->size(), 1u);
  EXPECT_FALSE(Ops[2].Successors.has_value());
}

TEST_F(IRDLParserTest, RegionWithTerminator) {
  auto Dialects = parse(R"(
    Dialect d {
      Operation range_loop {
        Operands (lower: !i32)
        Region body {
          Arguments (iv: !i32)
          Terminator range_loop_terminator
        }
      }
    }
  )");
  ASSERT_EQ(Dialects.size(), 1u);
  const OpDecl &Op = Dialects[0].Ops[0];
  ASSERT_EQ(Op.Regions.size(), 1u);
  EXPECT_EQ(Op.Regions[0].Name, "body");
  ASSERT_EQ(Op.Regions[0].Args.size(), 1u);
  EXPECT_EQ(Op.Regions[0].Terminator,
            std::vector<std::string>{"range_loop_terminator"});
}

TEST_F(IRDLParserTest, AliasForms) {
  auto Dialects = parse(R"(
    Dialect d {
      Alias !Complexf32 = !complex<!f32>
      Alias !ComplexOr<T> = AnyOf<!complex<!AnyType>, T>
      Alias #MyAttr = #f32_attr
    }
  )");
  ASSERT_EQ(Dialects.size(), 1u);
  const auto &Aliases = Dialects[0].Aliases;
  ASSERT_EQ(Aliases.size(), 3u);
  EXPECT_EQ(Aliases[0].Sigil, '!');
  EXPECT_TRUE(Aliases[0].Params.empty());
  EXPECT_EQ(Aliases[1].Params, std::vector<std::string>{"T"});
  EXPECT_EQ(Aliases[2].Sigil, '#');
}

TEST_F(IRDLParserTest, EnumDecl) {
  auto Dialects = parse(R"(
    Dialect d {
      Enum signedness { Signless, Signed, Unsigned }
    }
  )");
  ASSERT_EQ(Dialects.size(), 1u);
  ASSERT_EQ(Dialects[0].Enums.size(), 1u);
  EXPECT_EQ(Dialects[0].Enums[0].Cases,
            (std::vector<std::string>{"Signless", "Signed", "Unsigned"}));
}

TEST_F(IRDLParserTest, ConstraintAndTypeOrAttrParam) {
  auto Dialects = parse(R"irdl(
    Dialect d {
      Constraint BoundedInteger : uint32_t {
        Summary "integer value between 0 and 32"
        CppConstraint "$_self <= 32"
      }
      TypeOrAttrParam StringParam {
        Summary "A string parameter"
        CppClassName "char*"
        CppParser "parseStringParam($self)"
        CppPrinter "printStringParam($self)"
      }
    }
  )irdl");
  ASSERT_EQ(Dialects.size(), 1u);
  ASSERT_EQ(Dialects[0].Constraints.size(), 1u);
  const ConstraintDecl &C = Dialects[0].Constraints[0];
  EXPECT_EQ(C.Name, "BoundedInteger");
  EXPECT_EQ(C.CppConstraint, "$_self <= 32");
  EXPECT_EQ(C.Base->Path, std::vector<std::string>{"uint32_t"});
  ASSERT_EQ(Dialects[0].ParamTypes.size(), 1u);
  EXPECT_EQ(Dialects[0].ParamTypes[0].CppClassName, "char*");
}

TEST_F(IRDLParserTest, LiteralConstraints) {
  auto Dialects = parse(R"(
    Dialect d {
      Type t {
        Parameters (a: 3 : int32_t, b: "foo", c: [string, int8_t],
                    d: -7, e: 2.5 : float32_t)
      }
    }
  )");
  ASSERT_EQ(Dialects.size(), 1u) << Diags.renderAll();
  const auto &Params = Dialects[0].TypesAndAttrs[0].Params;
  ASSERT_EQ(Params.size(), 5u);
  EXPECT_EQ(Params[0].Constr->K, ConstraintExpr::Kind::IntLit);
  EXPECT_EQ(Params[0].Constr->IntValue, 3);
  EXPECT_EQ(Params[0].Constr->KindRef,
            std::vector<std::string>{"int32_t"});
  EXPECT_EQ(Params[1].Constr->K, ConstraintExpr::Kind::StrLit);
  EXPECT_EQ(Params[2].Constr->K, ConstraintExpr::Kind::ArrayExact);
  EXPECT_EQ(Params[2].Constr->Args.size(), 2u);
  EXPECT_EQ(Params[3].Constr->IntValue, -7);
  EXPECT_EQ(Params[4].Constr->K, ConstraintExpr::Kind::FloatLit);
  EXPECT_EQ(Params[4].Constr->FloatValue, 2.5);
}

TEST_F(IRDLParserTest, NestedConstraintArgs) {
  auto Dialects = parse(R"(
    Dialect d {
      Operation op {
        Operands (x: AnyOf<!f32, And<!i32, Not<!i64>>>)
      }
    }
  )");
  ASSERT_EQ(Dialects.size(), 1u);
  const ConstraintExpr &E = *Dialects[0].Ops[0].Operands[0].Constr;
  EXPECT_EQ(E.Path, std::vector<std::string>{"AnyOf"});
  ASSERT_EQ(E.Args.size(), 2u);
  EXPECT_EQ(E.Args[1]->Path, std::vector<std::string>{"And"});
  ASSERT_EQ(E.Args[1]->Args.size(), 2u);
  EXPECT_EQ(E.Args[1]->Args[1]->Path, std::vector<std::string>{"Not"});
}

TEST_F(IRDLParserTest, Comments) {
  auto Dialects = parse(R"(
    // Leading comment.
    Dialect d { // trailing
      // Inside.
      Operation op { }
    }
  )");
  ASSERT_EQ(Dialects.size(), 1u);
  EXPECT_EQ(Dialects[0].Ops.size(), 1u);
}

TEST_F(IRDLParserTest, Errors) {
  EXPECT_TRUE(parse("Dialect {").empty());
  EXPECT_TRUE(Diags.hadError());
  Diags.clear();

  EXPECT_TRUE(parse("NotADialect foo {}").empty());
  Diags.clear();

  EXPECT_TRUE(parse("Dialect d { Operation op { Bogus () } }").empty());
  Diags.clear();

  EXPECT_TRUE(parse("Dialect d { Type t { Parameters (x !f32) } }")
                  .empty());
  Diags.clear();

  EXPECT_TRUE(parse("Dialect d { Operation op { Format 32 } }").empty());
  Diags.clear();

  // Unterminated body.
  EXPECT_TRUE(parse("Dialect d { Operation op {").empty());
}

} // namespace
