//===- ConstraintPropertyTest.cpp - Property-style constraint sweeps ------===//
///
/// Parameterized sweeps over the constraint algebra checking logical
/// invariants: Not is an involution, AnyOf/And behave like disjunction/
/// conjunction, equality constraints pick exactly one value, and
/// backtracking never leaks bindings — over a grid of sample values.

#include "irdl/Constraint.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

/// A shared context + a pool of sample values covering every ParamValue
/// kind.
class ValuePool {
public:
  ValuePool() {
    Dialect *D = Ctx.getOrCreateDialect("prop");
    Box = D->addType("box");
    Box->setParamNames({"elem"});
    E = D->addEnum("color", {"R", "G", "B"});

    Values.emplace_back(Ctx.getFloatType(32));
    Values.emplace_back(Ctx.getFloatType(64));
    Values.emplace_back(Ctx.getIntegerType(32));
    Values.emplace_back(
        Ctx.getType(Box, {ParamValue(Ctx.getFloatType(32))}));
    Values.emplace_back(
        Ctx.getType(Box, {ParamValue(Ctx.getIntegerType(8))}));
    Values.emplace_back(Ctx.getIntegerAttr(3, 32));
    Values.emplace_back(Ctx.getStringAttr("s"));
    Values.emplace_back(IntVal{32, Signedness::Signless, 0});
    Values.emplace_back(IntVal{32, Signedness::Signless, 7});
    Values.emplace_back(IntVal{64, Signedness::Unsigned, 7});
    Values.emplace_back(FloatVal{32, 1.5});
    Values.emplace_back(std::string("hello"));
    Values.emplace_back(std::string(""));
    Values.emplace_back(EnumVal{E, 0});
    Values.emplace_back(EnumVal{E, 2});
    Values.emplace_back(std::vector<ParamValue>{});
    Values.emplace_back(std::vector<ParamValue>{
        ParamValue(IntVal{32, Signedness::Signless, 1})});
    Values.emplace_back(OpaqueVal{"location", "f:1:1"});
  }

  IRContext Ctx;
  TypeDefinition *Box;
  EnumDef *E;
  std::vector<ParamValue> Values;

  std::vector<ConstraintPtr> sampleConstraints() {
    return {
        Constraint::anyType(),
        Constraint::anyAttr(),
        Constraint::anyParam(),
        Constraint::typeEq(Ctx.getFloatType(32)),
        Constraint::typeConstraint(Box, {}, /*BaseOnly=*/true),
        Constraint::typeConstraint(
            Box, {Constraint::typeEq(Ctx.getFloatType(32))}, false),
        Constraint::intKind(32, Signedness::Signless),
        Constraint::intEq(IntVal{32, Signedness::Signless, 7}),
        Constraint::floatKind(32),
        Constraint::stringKind(),
        Constraint::stringEq("hello"),
        Constraint::enumKind(E),
        Constraint::enumEq(EnumVal{E, 0}),
        Constraint::anyArray(),
        Constraint::arrayOf(
            Constraint::intKind(32, Signedness::Signless)),
        Constraint::opaqueKind("location"),
    };
  }
};

ValuePool &pool() {
  static ValuePool P;
  return P;
}

bool plainMatch(const ConstraintPtr &C, const ParamValue &V) {
  MatchContext MC;
  return C->matches(V, MC);
}

/// One test instance per (constraint index, value index) pair.
class ConstraintValueGrid
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConstraintValueGrid, NotIsComplement) {
  auto [CI, VI] = GetParam();
  ConstraintPtr C = pool().sampleConstraints()[CI];
  const ParamValue &V = pool().Values[VI];
  EXPECT_NE(plainMatch(C, V), plainMatch(Constraint::negation(C), V));
}

TEST_P(ConstraintValueGrid, DoubleNegationIsIdentity) {
  auto [CI, VI] = GetParam();
  ConstraintPtr C = pool().sampleConstraints()[CI];
  const ParamValue &V = pool().Values[VI];
  ConstraintPtr NotNot =
      Constraint::negation(Constraint::negation(C));
  EXPECT_EQ(plainMatch(C, V), plainMatch(NotNot, V));
}

TEST_P(ConstraintValueGrid, ExcludedMiddle) {
  auto [CI, VI] = GetParam();
  ConstraintPtr C = pool().sampleConstraints()[CI];
  const ParamValue &V = pool().Values[VI];
  ConstraintPtr Either =
      Constraint::anyOf({C, Constraint::negation(C)});
  EXPECT_TRUE(plainMatch(Either, V));
  ConstraintPtr Both =
      Constraint::conjunction({C, Constraint::negation(C)});
  EXPECT_FALSE(plainMatch(Both, V));
}

TEST_P(ConstraintValueGrid, AnyOfIsDisjunction) {
  auto [CI, VI] = GetParam();
  auto Cs = pool().sampleConstraints();
  ConstraintPtr A = Cs[CI];
  const ParamValue &V = pool().Values[VI];
  for (size_t J = 0; J < Cs.size(); J += 3) {
    ConstraintPtr B = Cs[J];
    bool Expected = plainMatch(A, V) || plainMatch(B, V);
    EXPECT_EQ(plainMatch(Constraint::anyOf({A, B}), V), Expected);
    // Commutativity.
    EXPECT_EQ(plainMatch(Constraint::anyOf({B, A}), V), Expected);
  }
}

TEST_P(ConstraintValueGrid, AndIsConjunction) {
  auto [CI, VI] = GetParam();
  auto Cs = pool().sampleConstraints();
  ConstraintPtr A = Cs[CI];
  const ParamValue &V = pool().Values[VI];
  for (size_t J = 0; J < Cs.size(); J += 3) {
    ConstraintPtr B = Cs[J];
    bool Expected = plainMatch(A, V) && plainMatch(B, V);
    EXPECT_EQ(plainMatch(Constraint::conjunction({A, B}), V), Expected);
  }
}

TEST_P(ConstraintValueGrid, ConcreteValueIsSound) {
  // Whenever a constraint derives a concrete value, that value must
  // satisfy the constraint.
  auto [CI, VI] = GetParam();
  (void)VI;
  ConstraintPtr C = pool().sampleConstraints()[CI];
  MatchContext MC;
  if (auto V = C->concreteValue(MC)) {
    EXPECT_TRUE(plainMatch(C, *V)) << C->str();
  }
}

TEST_P(ConstraintValueGrid, MatchingIsDeterministic) {
  auto [CI, VI] = GetParam();
  ConstraintPtr C = pool().sampleConstraints()[CI];
  const ParamValue &V = pool().Values[VI];
  EXPECT_EQ(plainMatch(C, V), plainMatch(C, V));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConstraintValueGrid,
    ::testing::Combine(::testing::Range(0, 16), ::testing::Range(0, 18)));

/// Variable-binding properties over the value grid.
class VarBindingSweep : public ::testing::TestWithParam<int> {};

TEST_P(VarBindingSweep, VarUnifiesOnlyWithItself) {
  const ParamValue &V = pool().Values[GetParam()];
  std::vector<ConstraintPtr> Vars = {Constraint::anyParam()};
  ConstraintPtr VarC = Constraint::var(0, "T");
  MatchContext MC(&Vars);
  ASSERT_TRUE(VarC->matches(V, MC));
  for (const ParamValue &Other : pool().Values)
    EXPECT_EQ(VarC->matches(Other, MC), Other == V);
}

TEST_P(VarBindingSweep, FailedAnyOfBranchNeverLeaksBinding) {
  const ParamValue &V = pool().Values[GetParam()];
  std::vector<ConstraintPtr> Vars = {Constraint::anyParam()};
  // First branch binds T then fails (conjunction with an unsatisfiable
  // constraint); second branch never references T.
  ConstraintPtr Unsat = Constraint::conjunction(
      {Constraint::var(0, "T"),
       Constraint::negation(Constraint::anyParam())});
  ConstraintPtr C = Constraint::anyOf({Unsat, Constraint::anyParam()});
  MatchContext MC(&Vars);
  EXPECT_TRUE(C->matches(V, MC));
  EXPECT_FALSE(MC.getBinding(0).has_value());
}

INSTANTIATE_TEST_SUITE_P(Values, VarBindingSweep,
                         ::testing::Range(0, 18));

} // namespace
