//===- SpecPrinterTest.cpp - IRDL pretty-printer round trips -------------===//

#include "ir/Context.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class SpecPrinterTest : public ::testing::Test {
protected:
  SpecPrinterTest() : Diags(&SrcMgr) {}

  std::unique_ptr<IRDLModule> load(IRContext &Ctx, std::string_view Src) {
    return loadIRDL(Ctx, Src, SrcMgr, Diags);
  }

  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

TEST_F(SpecPrinterTest, PrintContainsDeclarations) {
  IRContext Ctx;
  auto M = load(Ctx, R"(
    Dialect cm {
      Enum mode { A, B }
      Type complex { Parameters (e: AnyOf<!f32, !f64>) Summary "cplx" }
      Operation mul {
        ConstraintVar (!T: !complex)
        Operands (lhs: !T, rhs: !T)
        Results (res: !T)
        Summary "multiply"
      }
      Operation many {
        Operands (xs: Variadic<!f32>, y: Optional<!i32>)
        Successors (a, b)
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  std::string Text = printDialectSpec(*M->getDialects()[0]);
  EXPECT_NE(Text.find("Dialect cm {"), std::string::npos);
  EXPECT_NE(Text.find("Enum mode { A, B }"), std::string::npos);
  EXPECT_NE(Text.find("Type complex {"), std::string::npos);
  EXPECT_NE(Text.find("Parameters (e: AnyOf<!builtin.f32, "
                      "!builtin.f64>)"),
            std::string::npos);
  EXPECT_NE(Text.find("ConstraintVars (!T: !cm.complex)"),
            std::string::npos);
  EXPECT_NE(Text.find("Operands (xs: Variadic<!builtin.f32>, "
                      "y: Optional<"),
            std::string::npos);
  EXPECT_NE(Text.find("Successors (a, b)"), std::string::npos);
  EXPECT_NE(Text.find("Summary \"multiply\""), std::string::npos);
}

TEST_F(SpecPrinterTest, PrintedSpecReloads) {
  IRContext Ctx;
  auto M = load(Ctx, R"(
    Dialect rt {
      Enum mode { Fast, Safe }
      Type vec { Parameters (elem: !AnyType, n: uint32_t) }
      Attribute flag { Parameters (v: string) }
      Operation combine {
        ConstraintVars (T: !AnyType)
        Operands (a: !vec<!T, uint32_t>, b: Variadic<!f32>)
        Results (r: !T)
        Attributes (f: #flag)
        Summary "combines things"
      }
      Operation looped {
        Region body { Arguments (iv: !i32) Terminator looped_end }
      }
      Operation looped_end { Successors () }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  std::string Text = printDialectSpec(*M->getDialects()[0]);

  // Reload into a fresh context (the printed form is valid IRDL).
  IRContext Ctx2;
  auto M2 = load(Ctx2, Text);
  ASSERT_NE(M2, nullptr) << Text << "\n" << Diags.renderAll();
  const DialectSpec *D2 = M2->lookupDialect("rt");
  ASSERT_NE(D2, nullptr);
  EXPECT_EQ(D2->Ops.size(), 3u);
  EXPECT_EQ(D2->Types.size(), 1u);
  EXPECT_EQ(D2->Attrs.size(), 1u);
  EXPECT_EQ(D2->Enums.size(), 1u);

  // Printing again is a fixed point.
  std::string Text2 = printDialectSpec(*M2->getDialects()[0]);
  EXPECT_EQ(Text, Text2);
}

TEST_F(SpecPrinterTest, CppConstraintsSurvive) {
  IRContext Ctx;
  auto M = load(Ctx, R"(
    Dialect cc {
      Type bounded { Parameters (n: uint32_t)
                     CppConstraint "$_self.n <= 32" }
      Operation op {
        Operands (a: !bounded)
        CppConstraint "$_self.numOperands == 1"
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  std::string Text = printDialectSpec(*M->getDialects()[0]);
  EXPECT_NE(Text.find("CppConstraint \"$_self.n <= 32\""),
            std::string::npos);
  EXPECT_NE(Text.find("CppConstraint \"$_self.numOperands == 1\""),
            std::string::npos);

  IRContext Ctx2;
  auto M2 = load(Ctx2, Text);
  ASSERT_NE(M2, nullptr) << Text << "\n" << Diags.renderAll();
  EXPECT_TRUE(M2->lookupDialect("cc")->Ops[0].requiresCppVerifier());
}

} // namespace
