//===- DialectFilesTest.cpp - Bundled .irdl files ------------------------===//
///
/// Parameterized over every bundled dialect file: each must load cleanly,
/// pretty-print, and reload to a fixed point; plus file-specific semantic
/// checks for arith and scf.

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class DialectFileTest : public ::testing::TestWithParam<const char *> {};

TEST_P(DialectFileTest, LoadsCleanly) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) + "/" +
                                 GetParam(),
                        SrcMgr, Diags);
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  EXPECT_FALSE(M->getDialects().empty());
  EXPECT_GT(M->getNumOps(), 0u);
}

TEST_P(DialectFileTest, PrettyPrintReachesFixedPoint) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) + "/" +
                                 GetParam(),
                        SrcMgr, Diags);
  ASSERT_NE(M, nullptr) << Diags.renderAll();

  for (const auto &D : M->getDialects()) {
    std::string Once = printDialectSpec(*D);
    IRContext Ctx2;
    SourceMgr SrcMgr2;
    DiagnosticEngine Diags2(&SrcMgr2);
    auto M2 = loadIRDL(Ctx2, Once, SrcMgr2, Diags2);
    ASSERT_NE(M2, nullptr) << Once << "\n" << Diags2.renderAll();
    std::string Twice = printDialectSpec(*M2->getDialects()[0]);
    EXPECT_EQ(Once, Twice);
  }
}

INSTANTIATE_TEST_SUITE_P(Bundled, DialectFileTest,
                         ::testing::Values("cmath.irdl", "arith.irdl",
                                           "scf.irdl", "complex.irdl",
                                           "math.irdl"));

class ArithDialectTest : public ::testing::Test {
protected:
  ArithDialectTest() : Diags(&SrcMgr) {
    Module = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                   "/arith.irdl",
                          SrcMgr, Diags);
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  std::unique_ptr<IRDLModule> Module;
};

TEST_F(ArithDialectTest, ElementwiseOpsUnify) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%a: i32, %b: i32) {
      %c = "arith.addi"(%a, %b) : (i32, i32) -> (i32)
      %d = "arith.muli"(%c, %c) : (i32, i32) -> (i32)
      %p = "arith.cmpi"(%c, %d) {predicate = opaque} : (i32, i32) -> (i1)
      std.return
    }
  )");
  // The cmpi predicate attr must be an enum constructor; an arbitrary
  // attr fails; build a correct one below.
  EXPECT_FALSE(static_cast<bool>(M));
  Diags.clear();

  OwningOpRef M2 = parse(R"(
    std.func @f(%a: i32, %b: i32) {
      %c = "arith.addi"(%a, %b) : (i32, i32) -> (i32)
      %d = "arith.muli"(%c, %c) : (i32, i32) -> (i32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M2)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M2->verify(V))) << V.renderAll();

  // Mixed-width addi rejected by the constraint variable.
  OwningOpRef Bad = parse(R"(
    std.func @f(%a: i32, %b: i64) {
      %c = "arith.addi"(%a, %b) : (i32, i64) -> (i32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  DiagnosticEngine V2;
  EXPECT_TRUE(failed(Bad->verify(V2)));
}

TEST_F(ArithDialectTest, EnumAttributeConstraint) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  // Build cmpi with a proper enum parameter wrapped... enums are type/attr
  // parameters; as op attributes they arrive as attributes. The spec
  // declares `predicate: cmp_predicate`, an enum constraint, so the
  // attribute must be... no builtin attr holds enum values; use the
  // generic #AnyAttr check instead: the constraint rejects any attr.
  const DialectSpec *Arith = Module->lookupDialect("arith");
  const OpSpec *Cmpi = Arith->lookupOp("cmpi");
  ASSERT_NE(Cmpi, nullptr);
  MatchContext MC;
  // An integer attribute is not an enum constructor.
  EXPECT_FALSE(Cmpi->Attributes[0].Constr->matches(
      ParamValue(Ctx.getIntegerAttr(1, 32)), MC));
  // An enum value satisfies it.
  EnumDef *Pred = Ctx.resolveEnumDef("arith.cmp_predicate");
  ASSERT_NE(Pred, nullptr);
  EXPECT_TRUE(Cmpi->Attributes[0].Constr->matches(
      ParamValue(EnumVal{Pred, 2}), MC));
}

class ScfDialectTest : public ::testing::Test {
protected:
  ScfDialectTest() : Diags(&SrcMgr) {
    Module = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                   "/scf.irdl",
                          SrcMgr, Diags);
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  std::unique_ptr<IRDLModule> Module;
};

TEST_F(ScfDialectTest, ForLoopWithYield) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%lo: index, %hi: index, %step: index, %init: f32) {
      %sum = "scf.for"(%lo, %hi, %step, %init) ({
      ^bb0(%iv: index):
        "scf.yield"(%init) : (f32) -> ()
      }) : (index, index, index, f32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();
}

TEST_F(ScfDialectTest, ForRequiresYieldTerminator) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%lo: index) {
      "scf.for"(%lo, %lo, %lo) ({
      ^bb0(%iv: index):
        %c = std.constant 1.0 : f32
      }) : (index, index, index) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(failed(M->verify(V)));
  EXPECT_NE(V.renderAll().find("must end with 'scf.yield'"),
            std::string::npos);
}

TEST_F(ScfDialectTest, IfWithBothRegions) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1, %x: f32) {
      %r = "scf.if"(%c) ({
        "scf.yield"(%x) : (f32) -> ()
      }, {
        "scf.yield"(%x) : (f32) -> ()
      }) : (i1) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();

  // Only one region: rejected.
  OwningOpRef Bad = parse(R"(
    std.func @f(%c: i1) {
      "scf.if"(%c) ({
        "scf.yield"() : () -> ()
      }) : (i1) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  DiagnosticEngine V2;
  EXPECT_TRUE(failed(Bad->verify(V2)));
  EXPECT_NE(V2.renderAll().find("expects 2 regions"), std::string::npos);
}

} // namespace
