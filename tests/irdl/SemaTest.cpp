//===- SemaTest.cpp - IRDL name resolution semantics --------------------===//

#include "ir/Context.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class SemaTest : public ::testing::Test {
protected:
  SemaTest() : Diags(&SrcMgr) {}

  std::unique_ptr<IRDLModule> load(std::string_view Src,
                                   IRDLLoadOptions Opts = {}) {
    return loadIRDL(Ctx, Src, SrcMgr, Diags, Opts);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

TEST_F(SemaTest, AliasExpansion) {
  auto M = load(R"(
    Dialect d {
      Alias !FloatType = !AnyOf<!f32, !f64>
      Type t { Parameters (e: !FloatType) }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const TypeOrAttrSpec *T = M->lookupDialect("d")->lookupType("t");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Params[0].Constr->str(),
            "AnyOf<!builtin.f32, !builtin.f64>");
}

TEST_F(SemaTest, ParametricAlias) {
  auto M = load(R"(
    Dialect d {
      Type complex { Parameters (e: !AnyType) }
      Alias !ComplexOr<T> = AnyOf<!complex<!AnyType>, T>
      Operation op { Operands (x: !ComplexOr<!f32>) }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const OpSpec *Op = M->lookupDialect("d")->lookupOp("op");
  ASSERT_NE(Op, nullptr);
  EXPECT_EQ(Op->Operands[0].Constr->str(),
            "AnyOf<!d.complex<!AnyType>, !builtin.f32>");
}

TEST_F(SemaTest, AliasArityChecked) {
  auto M = load(R"(
    Dialect d {
      Alias !A<T> = T
      Operation op { Operands (x: !A<!f32, !f64>) }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_TRUE(Diags.hadError());
}

TEST_F(SemaTest, RecursiveAliasDiagnosed) {
  auto M = load(R"(
    Dialect d {
      Alias !A = !B
      Alias !B = !A
      Operation op { Operands (x: !A) }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_TRUE(Diags.hadError());
}

TEST_F(SemaTest, CrossDialectReferences) {
  auto M = load(R"(
    Dialect base {
      Type scalar { Parameters (width: uint32_t) }
      Enum mode { Fast, Safe }
    }
    Dialect user {
      Operation op {
        Operands (x: !base.scalar<uint32_t>)
        Attributes (m: base.mode)
      }
      Type wrapper { Parameters (inner: !base.scalar, m: base.mode.Fast) }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const DialectSpec *User = M->lookupDialect("user");
  EXPECT_EQ(User->lookupOp("op")->Operands[0].Constr->str(),
            "!base.scalar<uint32_t>");
  EXPECT_EQ(User->lookupType("wrapper")->Params[1].Constr->str(),
            "base.mode.Fast");
}

TEST_F(SemaTest, NamespaceElision) {
  // Bare names search current dialect, then builtin, then std.
  auto M = load(R"(
    Dialect d {
      Type mine { Parameters (x: !AnyType) }
      Operation op {
        Operands (a: !mine, b: !f32, c: !integer<uint32_t, signedness>)
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const OpSpec *Op = M->lookupDialect("d")->lookupOp("op");
  EXPECT_EQ(Op->Operands[0].Constr->str(), "!d.mine");
  EXPECT_EQ(Op->Operands[1].Constr->str(), "!builtin.f32");
  EXPECT_EQ(Op->Operands[2].Constr->str(),
            "!builtin.integer<uint32_t, builtin.signedness>");
}

TEST_F(SemaTest, IntegerSugarConstraints) {
  auto M = load(R"(
    Dialect d {
      Operation op { Operands (a: !i32, b: !si8, c: !ui16, d: !index) }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const OpSpec *Op = M->lookupDialect("d")->lookupOp("op");
  // i32 expands to the parametric integer constraint.
  EXPECT_EQ(Op->Operands[0].Constr->getKind(),
            Constraint::Kind::TypeParams);
  EXPECT_EQ(Op->Operands[3].Constr->str(), "!builtin.index");

  // And they actually match the right types.
  MatchContext MC;
  EXPECT_TRUE(Op->Operands[0].Constr->matches(
      ParamValue(Ctx.getIntegerType(32)), MC));
  EXPECT_FALSE(Op->Operands[0].Constr->matches(
      ParamValue(Ctx.getIntegerType(64)), MC));
  EXPECT_TRUE(Op->Operands[1].Constr->matches(
      ParamValue(Ctx.getIntegerType(8, Signedness::Signed)), MC));
}

TEST_F(SemaTest, EnumConstructorResolution) {
  auto M = load(R"(
    Dialect d {
      Enum signedness2 { Signless, Signed, Unsigned }
      Type integer2 {
        Parameters (bitwidth: uint32_t, signed: signedness2)
      }
      Alias !signed_integer2 = !integer2<uint32_t, signedness2.Signed>
      Operation op { Operands (x: !signed_integer2) }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const OpSpec *Op = M->lookupDialect("d")->lookupOp("op");
  EXPECT_EQ(Op->Operands[0].Constr->str(),
            "!d.integer2<uint32_t, d.signedness2.Signed>");
}

TEST_F(SemaTest, UnknownEnumCaseDiagnosed) {
  auto M = load(R"(
    Dialect d {
      Enum e { A, B }
      Type t { Parameters (x: e.C) }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("not a constructor"),
            std::string::npos);
}

TEST_F(SemaTest, UnknownConstraintDiagnosed) {
  auto M = load("Dialect d { Operation op { Operands (x: !nothing) } }");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("unknown constraint"),
            std::string::npos);
}

TEST_F(SemaTest, ParamCountMismatchDiagnosed) {
  auto M = load(R"(
    Dialect d {
      Type t { Parameters (a: !AnyType, b: uint32_t) }
      Operation op { Operands (x: !t<!f32>) }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("2 parameters"), std::string::npos);
}

TEST_F(SemaTest, DuplicateDefinitionsDiagnosed) {
  EXPECT_EQ(load("Dialect d { Type t {} Type t {} }"), nullptr);
  Diags.clear();
  EXPECT_EQ(load("Dialect d { Operation o {} Operation o {} }"), nullptr);
  Diags.clear();
  EXPECT_EQ(load("Dialect d {} Dialect d {}"), nullptr);
  Diags.clear();
  // Extending a pre-registered dialect is allowed, but clashing component
  // names are rejected.
  EXPECT_NE(load("Dialect builtin { Type fancy {} }"), nullptr);
  EXPECT_EQ(load("Dialect std { Operation func {} }"), nullptr);
}

TEST_F(SemaTest, VariadicOnlyAtTopLevel) {
  auto M = load(R"(
    Dialect d {
      Operation op { Operands (x: AnyOf<Variadic<!f32>, !f64>) }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("only allowed at the top level"),
            std::string::npos);
}

TEST_F(SemaTest, ConstraintVarsAcrossDirectives) {
  auto M = load(R"(
    Dialect d {
      Operation op {
        ConstraintVars (T: !AnyType, U: !AnyType)
        Operands (a: !T, b: !U)
        Results (r: !T)
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const OpSpec *Op = M->lookupDialect("d")->lookupOp("op");
  EXPECT_EQ(Op->VarNames,
            (std::vector<std::string>{"T", "U"}));
  EXPECT_EQ(Op->Operands[0].Constr->getKind(), Constraint::Kind::Var);
  EXPECT_EQ(Op->Results[0].Constr->getVarIndex(), 0u);
}

TEST_F(SemaTest, NamedConstraintWithCpp) {
  auto M = load(R"(
    Dialect d {
      Constraint BoundedInteger : uint32_t {
        Summary "integer value between 0 and 32"
        CppConstraint "$_self <= 32"
      }
      Type BoundedVector {
        Parameters (typ: !AnyType, size: BoundedInteger)
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const TypeOrAttrSpec *T =
      M->lookupDialect("d")->lookupType("BoundedVector");
  ASSERT_NE(T, nullptr);
  EXPECT_TRUE(T->Params[1].Constr->requiresCpp());

  MatchContext MC;
  EXPECT_TRUE(T->Params[1].Constr->matches(
      ParamValue(IntVal{32, Signedness::Unsigned, 16}), MC));
  EXPECT_FALSE(T->Params[1].Constr->matches(
      ParamValue(IntVal{32, Signedness::Unsigned, 64}), MC));

  // The dialect-level classification (Figure 9) sees the C++ use.
  EXPECT_TRUE(T->requiresCppParams());
}

TEST_F(SemaTest, NativeConstraintHookup) {
  IRDLLoadOptions Opts;
  Opts.NativeConstraints["is_power_of_two"] =
      [](const ParamValue &V) {
        if (!V.isInt())
          return false;
        int64_t X = V.getInt().Value;
        return X > 0 && (X & (X - 1)) == 0;
      };
  auto M = load(R"(
    Dialect d {
      Constraint Pow2 : uint32_t { CppConstraint "native:is_power_of_two" }
      Type t { Parameters (n: Pow2) }
    }
  )",
                Opts);
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const TypeOrAttrSpec *T = M->lookupDialect("d")->lookupType("t");
  MatchContext MC;
  EXPECT_TRUE(T->Params[0].Constr->matches(
      ParamValue(IntVal{32, Signedness::Unsigned, 8}), MC));
  EXPECT_FALSE(T->Params[0].Constr->matches(
      ParamValue(IntVal{32, Signedness::Unsigned, 6}), MC));
}

TEST_F(SemaTest, MissingNativeConstraintDiagnosed) {
  auto M = load(R"(
    Dialect d {
      Constraint C : uint32_t { CppConstraint "native:nope" }
      Type t { Parameters (n: C) }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("no native constraint"),
            std::string::npos);
}

TEST_F(SemaTest, TypeOrAttrParamBecomesOpaque) {
  auto M = load(R"irdl(
    Dialect d {
      TypeOrAttrParam StringParam {
        Summary "A string parameter"
        CppClassName "char*"
        CppParser "parseStringParam($self)"
        CppPrinter "printStringParam($self)"
      }
      Attribute StringAttr { Parameters (data: StringParam) }
    }
  )irdl");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const TypeOrAttrSpec *A = M->lookupDialect("d")->lookupAttr("StringAttr");
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Params[0].Constr->getKind(), Constraint::Kind::OpaqueKind);
  EXPECT_TRUE(A->requiresCppParams());
  // A codec was registered.
  EXPECT_NE(Ctx.lookupOpaqueParamCodec("d.StringParam"), nullptr);

  MatchContext MC;
  EXPECT_TRUE(A->Params[0].Constr->matches(
      ParamValue(OpaqueVal{"d.StringParam", "payload"}), MC));
  EXPECT_FALSE(A->Params[0].Constr->matches(
      ParamValue(std::string("plain string")), MC));
}

TEST_F(SemaTest, LocationAndTypeIdBuiltins) {
  auto M = load(R"(
    Dialect d {
      Attribute loc_attr { Parameters (loc: location, id: type_id) }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const TypeOrAttrSpec *A = M->lookupDialect("d")->lookupAttr("loc_attr");
  MatchContext MC;
  EXPECT_TRUE(A->Params[0].Constr->matches(
      ParamValue(OpaqueVal{"location", "f.c:1:2"}), MC));
  EXPECT_FALSE(A->Params[0].Constr->matches(
      ParamValue(OpaqueVal{"type_id", "x"}), MC));
}

TEST_F(SemaTest, F32AttrSugar) {
  auto M = load(R"(
    Dialect d {
      Operation op { Attributes (re: #f32_attr, im: #f64_attr) }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const OpSpec *Op = M->lookupDialect("d")->lookupOp("op");
  MatchContext MC;
  EXPECT_TRUE(Op->Attributes[0].Constr->matches(
      ParamValue(Ctx.getFloatAttr(1.0, 32)), MC));
  EXPECT_FALSE(Op->Attributes[0].Constr->matches(
      ParamValue(Ctx.getFloatAttr(1.0, 64)), MC));
  EXPECT_TRUE(Op->Attributes[1].Constr->matches(
      ParamValue(Ctx.getFloatAttr(1.0, 64)), MC));
}

} // namespace
