//===- SemaErrorTest.cpp - IRDL diagnostics sweep -------------------------===//
///
/// Parameterized sweep over malformed IRDL inputs: each must fail to load
/// with a diagnostic containing the expected fragment.

#include "ir/Context.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

struct ErrorCase {
  const char *Name;
  const char *Source;
  const char *ExpectedFragment;
};

class SemaErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(SemaErrorTest, DiagnosesCleanly) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto M = loadIRDL(Ctx, GetParam().Source, SrcMgr, Diags);
  EXPECT_EQ(M, nullptr);
  EXPECT_TRUE(Diags.hadError());
  EXPECT_NE(Diags.renderAll().find(GetParam().ExpectedFragment),
            std::string::npos)
      << "diagnostics were:\n"
      << Diags.renderAll();
}

std::string caseName(const ::testing::TestParamInfo<ErrorCase> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, SemaErrorTest,
    ::testing::Values(
        ErrorCase{"TopLevelGarbage", "Type t {}",
                  "expected 'Dialect' at top level"},
        ErrorCase{"MissingDialectName", "Dialect {",
                  "expected dialect name"},
        ErrorCase{"UnknownDialectDirective",
                  "Dialect d { Frobnicate x {} }",
                  "unknown directive in dialect body"},
        ErrorCase{"UnknownOpDirective",
                  "Dialect d { Operation o { Wibble () } }",
                  "unknown directive in operation body"},
        ErrorCase{"UnknownConstraintName",
                  "Dialect d { Operation o { Operands (x: !mystery) } }",
                  "unknown constraint 'mystery'"},
        ErrorCase{"UnknownQualifiedConstraint",
                  "Dialect d { Operation o { Operands (x: !other.t) } }",
                  "unknown constraint 'other.t'"},
        ErrorCase{"UnknownEnumCase",
                  R"(Dialect d {
                       Enum e { A }
                       Type t { Parameters (x: e.B) }
                     })",
                  "not a constructor"},
        ErrorCase{"NotTakesOneArg",
                  "Dialect d { Operation o { Operands (x: Not<!f32, "
                  "!f64>) } }",
                  "Not takes exactly one"},
        ErrorCase{"AnyOfNeedsArgs",
                  "Dialect d { Operation o { Operands (x: AnyOf) } }",
                  "AnyOf requires at least one constraint"},
        ErrorCase{"VariadicNested",
                  "Dialect d { Operation o { Operands (x: "
                  "Not<Variadic<!f32>>) } }",
                  "only allowed at the top level"},
        ErrorCase{"VariadicOnAttribute",
                  "Dialect d { Operation o { Attributes (a: "
                  "Variadic<#AnyAttr>) } }",
                  "only allowed at the top level"},
        ErrorCase{"ParamArityMismatch",
                  R"(Dialect d {
                       Type pair { Parameters (a: !AnyType, b: !AnyType) }
                       Operation o { Operands (x: !pair<!f32>) }
                     })",
                  "has 2 parameters but 1 constraints were given"},
        ErrorCase{"DuplicateType",
                  "Dialect d { Type t {} Type t {} }",
                  "redefinition of type 't'"},
        ErrorCase{"DuplicateOp",
                  "Dialect d { Operation o {} Operation o {} }",
                  "redefinition of operation 'o'"},
        ErrorCase{"DuplicateAlias",
                  "Dialect d { Alias !A = !f32 Alias !A = !f64 }",
                  "redefinition of alias 'A'"},
        ErrorCase{"RecursiveAlias",
                  R"(Dialect d {
                       Alias !A = !B
                       Alias !B = !A
                       Operation o { Operands (x: !A) }
                     })",
                  "alias expansion too deep"},
        ErrorCase{"AliasArity",
                  R"(Dialect d {
                       Alias !W<T> = T
                       Operation o { Operands (x: !W) }
                     })",
                  "expects 1 arguments but got 0"},
        ErrorCase{"UnknownTerminator",
                  R"(Dialect d {
                       Operation o {
                         Region body { Terminator ghost_op }
                       }
                     })",
                  "unknown terminator operation"},
        ErrorCase{"MissingNativeOpVerifier",
                  R"(Dialect d {
                       Operation o { CppConstraint "native:missing" }
                     })",
                  "no native op verifier registered"},
        ErrorCase{"BadCppExpression",
                  R"(Dialect d {
                       Operation o { CppConstraint "1 +" }
                     })",
                  "C++ constraint expression"},
        ErrorCase{"BadFormatString",
                  R"(Dialect d {
                       Operation o { Operands (x: !f32) Format "$" }
                     })",
                  "expected name after '$'"},
        ErrorCase{"SummaryNeedsString",
                  "Dialect d { Operation o { Summary 42 } }",
                  "expected string literal after 'Summary'"},
        ErrorCase{"EnumCaseNotIdent",
                  "Dialect d { Enum e { 3 } }",
                  "expected enum constructor"},
        ErrorCase{"ClashWithBuiltinComponent",
                  "Dialect builtin { Type f32 {} }",
                  "redefinition of type 'f32'"}),
    caseName);

} // namespace
