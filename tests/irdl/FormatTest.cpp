//===- FormatTest.cpp - Declarative format compilation -------------------===//

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class FormatTest : public ::testing::Test {
protected:
  FormatTest() : Diags(&SrcMgr) {}

  std::unique_ptr<IRDLModule> load(std::string_view Src) {
    return loadIRDL(Ctx, Src, SrcMgr, Diags);
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

TEST_F(FormatTest, SimpleOperandFormat) {
  auto M = load(R"(
    Dialect f {
      Operation pass {
        Operands (in: !f32)
        Results (out: !f32)
        Format "$in"
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  OwningOpRef IR = parse(R"(
    %x = std.constant 1.0 : f32
    %y = f.pass %x
  )");
  ASSERT_TRUE(static_cast<bool>(IR)) << Diags.renderAll();
  std::string Text = printOpToString(IR.get());
  EXPECT_NE(Text.find("f.pass %"), std::string::npos);
  // The result type f32 was inferred from the constraint.
  Operation *Pass = nullptr;
  IR->walk([&](Operation *Op) {
    if (Op->getName().str() == "f.pass")
      Pass = Op;
  });
  ASSERT_NE(Pass, nullptr);
  EXPECT_EQ(Pass->getResult(0).getType(), Ctx.getFloatType(32));
}

TEST_F(FormatTest, KeywordAndPunctuationLiterals) {
  auto M = load(R"(
    Dialect f {
      Operation move {
        Operands (src: !f32, dst: !f32)
        Format "$src to $dst"
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  OwningOpRef IR = parse(R"(
    %a = std.constant 1.0 : f32
    %b = std.constant 2.0 : f32
    f.move %a to %b
  )");
  ASSERT_TRUE(static_cast<bool>(IR)) << Diags.renderAll();
  std::string Text = printOpToString(IR.get());
  EXPECT_NE(Text.find("f.move %"), std::string::npos);
  EXPECT_NE(Text.find(" to %"), std::string::npos);

  // Missing the keyword is a parse error.
  OwningOpRef Bad = parse(R"(
    %a = std.constant 1.0 : f32
    f.move %a %a
  )");
  EXPECT_FALSE(static_cast<bool>(Bad));
  Diags.clear();
}

TEST_F(FormatTest, VarParamInference) {
  // The paper's mul: T reconstructed from its elementType parameter.
  auto M = load(R"(
    Dialect f {
      Type box { Parameters (elem: !AnyOf<!f32, !f64>) }
      Operation wrap {
        ConstraintVars (!E: !AnyOf<!f32, !f64>, !T: !box<E>)
        Operands (v: !E)
        Results (res: !T)
        Format "$v into $E"
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  OwningOpRef IR = parse(R"(
    %x = std.constant 1.5 : f64
    %b = f.wrap %x into f64
  )");
  ASSERT_TRUE(static_cast<bool>(IR)) << Diags.renderAll();
  Operation *Wrap = nullptr;
  IR->walk([&](Operation *Op) {
    if (Op->getName().str() == "f.wrap")
      Wrap = Op;
  });
  ASSERT_NE(Wrap, nullptr);
  Type Box = Ctx.getType(Ctx.resolveTypeDef("f.box"),
                         {ParamValue(Ctx.getFloatType(64))});
  EXPECT_EQ(Wrap->getResult(0).getType(), Box);

  // Round trip.
  std::string Text = printOpToString(IR.get());
  EXPECT_NE(Text.find("into f64"), std::string::npos);
  OwningOpRef IR2 = parse(Text);
  ASSERT_TRUE(static_cast<bool>(IR2)) << Text << Diags.renderAll();
  EXPECT_EQ(printOpToString(IR2.get()), Text);
}

TEST_F(FormatTest, AttrDirective) {
  auto M = load(R"(
    Dialect f {
      Operation imm {
        Results (res: !f32)
        Attributes (value: #f32_attr)
        Format "$value"
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  OwningOpRef IR = parse("%c = f.imm 2.5 : f32");
  ASSERT_TRUE(static_cast<bool>(IR)) << Diags.renderAll();
  Operation &Imm = IR->getRegion(0).front().front();
  EXPECT_EQ(Imm.getAttr("value"), Ctx.getFloatAttr(2.5, 32));
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(IR->verify(V))) << V.renderAll();
}

TEST_F(FormatTest, UnknownDirectiveRejected) {
  auto M = load(R"(
    Dialect f {
      Operation bad { Operands (x: !f32) Format "$nope" }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("unknown directive"),
            std::string::npos);
}

TEST_F(FormatTest, MissingOperandRejected) {
  auto M = load(R"(
    Dialect f {
      Operation bad { Operands (x: !f32, y: !f32) Format "$x" }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("does not appear in the format"),
            std::string::npos);
}

TEST_F(FormatTest, DuplicateOperandRejected) {
  auto M = load(R"(
    Dialect f {
      Operation bad { Operands (x: !f32) Format "$x $x" }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("appears twice"), std::string::npos);
}

TEST_F(FormatTest, UninferableTypeRejected) {
  // AnyType operand with no type directive: nothing pins the type down.
  auto M = load(R"(
    Dialect f {
      Operation bad { Operands (x: !AnyType) Format "$x" }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("cannot be inferred"),
            std::string::npos);
}

TEST_F(FormatTest, VariadicRejected) {
  auto M = load(R"(
    Dialect f {
      Operation bad { Operands (xs: Variadic<!f32>) Format "$xs" }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("variadic"), std::string::npos);
}

TEST_F(FormatTest, RegionsRejected) {
  auto M = load(R"(
    Dialect f {
      Operation bad { Region body { } Format "x" }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("regions are not supported"),
            std::string::npos);
}

TEST_F(FormatTest, ResultDirectiveRejected) {
  auto M = load(R"(
    Dialect f {
      Operation bad { Results (r: !f32) Format "$r" }
    }
  )");
  EXPECT_EQ(M, nullptr);
  EXPECT_NE(Diags.renderAll().find("results cannot appear"),
            std::string::npos);
}

TEST_F(FormatTest, VarDirectiveBindsWholeType) {
  // $T parses a full type expression and both operands use it.
  auto M = load(R"(
    Dialect f {
      Type box { Parameters (elem: !AnyType) }
      Operation eat {
        ConstraintVar (!T: !box<AnyType>)
        Operands (a: !T, b: !T)
        Format "$a, $b : $T"
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  OwningOpRef IR = parse(R"(
    std.func @g(%x: !f.box<i32>) {
      f.eat %x, %x : !f.box<i32>
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(IR)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(IR->verify(V))) << V.renderAll();
  std::string Text = printOpToString(IR.get());
  EXPECT_NE(Text.find("f.eat %0, %0 : !f.box<i32>"), std::string::npos);
}

TEST_F(FormatTest, WrongTypeAtUseSiteDiagnosed) {
  auto M = load(R"(
    Dialect f {
      Operation pass {
        Operands (in: !f32)
        Results (out: !f32)
        Format "$in"
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  // %x is i32; the format infers the operand type f32 -> mismatch.
  OwningOpRef IR = parse(R"(
    %x = std.constant 1 : i32
    %y = f.pass %x
  )");
  EXPECT_FALSE(static_cast<bool>(IR));
  EXPECT_NE(Diags.renderAll().find("has type i32 but is used as f32"),
            std::string::npos);
}

} // namespace
