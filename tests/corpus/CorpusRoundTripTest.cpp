//===- CorpusRoundTripTest.cpp - Synthesized dialects round-trip ----------===//
///
/// Property: pretty-printing any synthesized dialect spec and reloading it
/// through the frontend yields a dialect with identical statistics. This
/// exercises the SpecPrinter (including named-constraint uses and
/// IRDL-C++ markers) against the full variety the corpus generates.

#include "analysis/DialectStatistics.h"
#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class CorpusRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CorpusRoundTrip, PrintReloadPreservesStatistics) {
  const DialectProfile &Profile =
      getDialectProfiles()[static_cast<size_t>(GetParam())];

  // Load support + this dialect.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  std::string Text =
      synthesizeSupportDialectIRDL() + synthesizeDialectIRDL(Profile);
  auto M = loadIRDL(Ctx, Text, SrcMgr, Diags, corpusNativeOptions());
  ASSERT_NE(M, nullptr) << Profile.Name << "\n" << Diags.renderAll();
  const DialectSpec *Original = M->lookupDialect(Profile.Name);
  ASSERT_NE(Original, nullptr);

  // Pretty-print and reload into a fresh context.
  std::string Printed = printDialectSpec(*Original);
  IRContext Ctx2;
  SourceMgr SrcMgr2;
  DiagnosticEngine Diags2(&SrcMgr2);
  std::string Text2 = synthesizeSupportDialectIRDL() + Printed;
  auto M2 = loadIRDL(Ctx2, Text2, SrcMgr2, Diags2, corpusNativeOptions());
  ASSERT_NE(M2, nullptr) << Profile.Name << "\n"
                         << Diags2.renderAll() << "\n"
                         << Printed.substr(0, 2000);
  const DialectSpec *Reloaded = M2->lookupDialect(Profile.Name);
  ASSERT_NE(Reloaded, nullptr);

  // Statistics must be identical.
  auto StatsOf = [](const DialectSpec &D) {
    std::vector<std::shared_ptr<DialectSpec>> One = {
        std::make_shared<DialectSpec>(D)};
    return CorpusStatistics::compute(One);
  };
  CorpusStatistics A = StatsOf(*Original);
  CorpusStatistics B = StatsOf(*Reloaded);

  ASSERT_EQ(A.getDialects().size(), 1u);
  ASSERT_EQ(B.getDialects().size(), 1u);
  const DialectStatistics &DA = A.getDialects()[0];
  const DialectStatistics &DB = B.getDialects()[0];
  ASSERT_EQ(DA.Ops.size(), DB.Ops.size());
  for (size_t I = 0; I < DA.Ops.size(); ++I) {
    const OpRecord &RA = DA.Ops[I];
    const OpRecord &RB = DB.Ops[I];
    EXPECT_EQ(RA.Name, RB.Name);
    EXPECT_EQ(RA.NumOperandDefs, RB.NumOperandDefs) << RA.Name;
    EXPECT_EQ(RA.NumVariadicOperandDefs, RB.NumVariadicOperandDefs)
        << RA.Name;
    EXPECT_EQ(RA.NumResultDefs, RB.NumResultDefs) << RA.Name;
    EXPECT_EQ(RA.NumVariadicResultDefs, RB.NumVariadicResultDefs)
        << RA.Name;
    EXPECT_EQ(RA.NumAttrDefs, RB.NumAttrDefs) << RA.Name;
    EXPECT_EQ(RA.NumRegionDefs, RB.NumRegionDefs) << RA.Name;
    EXPECT_EQ(RA.IsTerminator, RB.IsTerminator) << RA.Name;
    EXPECT_EQ(RA.LocalConstraintsInIRDL, RB.LocalConstraintsInIRDL)
        << RA.Name;
    EXPECT_EQ(RA.NeedsCppVerifier, RB.NeedsCppVerifier) << RA.Name;
    EXPECT_EQ(RA.LocalCppKinds, RB.LocalCppKinds) << RA.Name;
  }
  ASSERT_EQ(DA.TypesAndAttrs.size(), DB.TypesAndAttrs.size());
  for (size_t I = 0; I < DA.TypesAndAttrs.size(); ++I) {
    const TypeAttrRecord &RA = DA.TypesAndAttrs[I];
    const TypeAttrRecord &RB = DB.TypesAndAttrs[I];
    EXPECT_EQ(RA.Name, RB.Name);
    EXPECT_EQ(RA.ParamKinds, RB.ParamKinds) << RA.Name;
    EXPECT_EQ(RA.ParamsInIRDL, RB.ParamsInIRDL) << RA.Name;
    EXPECT_EQ(RA.NeedsCppVerifier, RB.NeedsCppVerifier) << RA.Name;
  }
}

// All 28 dialects.
INSTANTIATE_TEST_SUITE_P(AllDialects, CorpusRoundTrip,
                         ::testing::Range(0, 28));

} // namespace
