//===- CorpusTest.cpp - The synthetic 28-dialect corpus ------------------===//
///
/// Validates the corpus pipeline end to end: the synthesized IRDL text
/// loads through the real frontend, and the statistics *measured* from
/// the resulting specs reproduce the aggregates the paper quotes in
/// Section 6 (within rounding).

#include "analysis/DialectStatistics.h"
#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

/// The corpus is deterministic; load it once for the whole suite.
class CorpusTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Ctx = new IRContext();
    SrcMgr = new SourceMgr();
    Diags = new DiagnosticEngine(SrcMgr);
    Result = new CorpusLoadResult(
        loadSyntheticCorpus(*Ctx, *SrcMgr, *Diags));
    if (*Result)
      Stats = new CorpusStatistics(
          CorpusStatistics::compute(Result->AnalysisDialects));
  }

  static void TearDownTestSuite() {
    delete Stats;
    delete Result;
    delete Diags;
    delete SrcMgr;
    delete Ctx;
    Stats = nullptr;
    Result = nullptr;
    Diags = nullptr;
    SrcMgr = nullptr;
    Ctx = nullptr;
  }

  static IRContext *Ctx;
  static SourceMgr *SrcMgr;
  static DiagnosticEngine *Diags;
  static CorpusLoadResult *Result;
  static CorpusStatistics *Stats;
};

IRContext *CorpusTest::Ctx = nullptr;
SourceMgr *CorpusTest::SrcMgr = nullptr;
DiagnosticEngine *CorpusTest::Diags = nullptr;
CorpusLoadResult *CorpusTest::Result = nullptr;
CorpusStatistics *CorpusTest::Stats = nullptr;

TEST_F(CorpusTest, LoadsThroughTheRealFrontend) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  EXPECT_EQ(Result->AnalysisDialects.size(), 28u);
}

TEST_F(CorpusTest, InventoryMatchesTable1) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  PaperAggregates Paper;
  EXPECT_EQ(Stats->totalOps(), Paper.NumOps);
  EXPECT_EQ(Stats->totalTypes(), Paper.NumTypes);
  EXPECT_EQ(Stats->totalAttrs(), Paper.NumAttrs);

  // Every Table 1 dialect is present with its profiled op count.
  for (const DialectProfile &P : getDialectProfiles()) {
    const DialectStatistics *D = Stats->lookup(P.Name);
    ASSERT_NE(D, nullptr) << P.Name;
    EXPECT_EQ(D->numOps(), P.NumOps) << P.Name;
    EXPECT_EQ(D->numTypes(), P.NumTypes) << P.Name;
    EXPECT_EQ(D->numAttrs(), P.NumAttrs) << P.Name;
  }
}

TEST_F(CorpusTest, OperandDistributionMatchesFigure5a) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  Distribution D = Stats->operandCountDist();
  PaperAggregates Paper;
  EXPECT_NEAR(D.fraction(0), Paper.Operands0, 0.01);
  EXPECT_NEAR(D.fraction(1), Paper.Operands1, 0.01);
  EXPECT_NEAR(D.fraction(2), Paper.Operands2, 0.01);
  EXPECT_NEAR(D.fraction(3), Paper.Operands3Plus, 0.01);
}

TEST_F(CorpusTest, VariadicOperandsMatchFigure5b) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  Distribution D = Stats->variadicOperandDist();
  PaperAggregates Paper;
  EXPECT_NEAR(1.0 - D.fraction(0), Paper.OpsWithVariadicOperand, 0.02);

  double DialectFrac = Stats->dialectFractionWithOp(
      [](const OpRecord &R) { return R.NumVariadicOperandDefs > 0; });
  EXPECT_NEAR(DialectFrac, Paper.DialectsWithVariadicOperand, 0.04);
}

TEST_F(CorpusTest, ResultDistributionMatchesFigure6) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  Distribution D = Stats->resultCountDist();
  PaperAggregates Paper;
  EXPECT_NEAR(D.fraction(0), Paper.Results0, 0.01);
  EXPECT_NEAR(D.fraction(1), Paper.Results1, 0.02);

  // Only gpu, x86vector, async, and shape define 2-result ops.
  for (const DialectStatistics &DS : Stats->getDialects()) {
    bool HasTwo = false;
    for (const OpRecord &R : DS.Ops)
      HasTwo |= R.NumResultDefs >= 2;
    bool Expected = DS.Name == "gpu" || DS.Name == "x86vector" ||
                    DS.Name == "async" || DS.Name == "shape";
    EXPECT_EQ(HasTwo, Expected) << DS.Name;
  }

  Distribution VR = Stats->variadicResultDist();
  EXPECT_NEAR(1.0 - VR.fraction(0), Paper.OpsWithVariadicResult, 0.01);
}

TEST_F(CorpusTest, AttrAndRegionUseMatchesFigure7) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  PaperAggregates Paper;
  Distribution A = Stats->attrCountDist();
  EXPECT_NEAR(A.fraction(0), Paper.OpsWithNoAttr, 0.01);

  Distribution R = Stats->regionCountDist();
  EXPECT_NEAR(1.0 - R.fraction(0), Paper.OpsWithRegion, 0.01);
  double RegionDialects = Stats->dialectFractionWithOp(
      [](const OpRecord &Rec) { return Rec.NumRegionDefs > 0; });
  EXPECT_NEAR(RegionDialects, Paper.DialectsWithRegionOp, 0.04);

  // scf and builtin have region ops in more than half their operations.
  for (const char *Name : {"scf", "builtin"}) {
    const DialectStatistics *D = Stats->lookup(Name);
    ASSERT_NE(D, nullptr);
    unsigned WithRegion = 0;
    for (const OpRecord &Rec : D->Ops)
      WithRegion += Rec.NumRegionDefs > 0;
    EXPECT_GT(2 * WithRegion, D->numOps()) << Name;
  }
}

TEST_F(CorpusTest, ParamKindsMatchFigure8) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  auto TypeKinds = Stats->typeParamKinds();
  auto AttrKinds = Stats->attrParamKinds();

  // attr/type parameters dominate both panels.
  unsigned TypeTotal = 0, AttrTotal = 0;
  for (auto &[K, N] : TypeKinds)
    TypeTotal += N;
  for (auto &[K, N] : AttrKinds)
    AttrTotal += N;
  EXPECT_GT(TypeKinds[ParamKind::AttrOrType], TypeTotal / 3);
  EXPECT_GT(AttrKinds[ParamKind::AttrOrType], AttrTotal / 3);

  // Domain-specific parameters are rare (3%-ish for types).
  EXPECT_LE(TypeKinds[ParamKind::DomainSpecific] * 100, TypeTotal * 5);

  // Locations and type ids appear only on the attribute side here.
  EXPECT_EQ(TypeKinds[ParamKind::Location], 0u);
  EXPECT_GT(AttrKinds[ParamKind::Location], 0u);
}

TEST_F(CorpusTest, TypeExpressibilityMatchesFigure9) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  PaperAggregates Paper;
  auto Params = Stats->typeParamExpressibility();
  EXPECT_NEAR(1.0 - Params.cppFraction(), Paper.TypesParamsInIRDL, 0.01);
  auto Verifiers = Stats->typeVerifierExpressibility();
  EXPECT_NEAR(Verifiers.cppFraction(), Paper.TypesWithCppVerifier, 0.01);
}

TEST_F(CorpusTest, AttrExpressibilityMatchesFigure10) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  PaperAggregates Paper;
  auto Params = Stats->attrParamExpressibility();
  EXPECT_NEAR(1.0 - Params.cppFraction(), Paper.AttrsParamsInIRDL, 0.01);
  auto Verifiers = Stats->attrVerifierExpressibility();
  EXPECT_NEAR(Verifiers.cppFraction(), Paper.AttrsWithCppVerifier, 0.01);
}

TEST_F(CorpusTest, OpExpressibilityMatchesFigure11) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  PaperAggregates Paper;
  auto Local = Stats->opLocalConstraintExpressibility();
  EXPECT_NEAR(1.0 - Local.cppFraction(), Paper.OpsLocalConstraintsInIRDL,
              0.01);
  auto Verifiers = Stats->opVerifierExpressibility();
  EXPECT_NEAR(Verifiers.cppFraction(), Paper.OpsNeedingCppVerifier, 0.01);
}

TEST_F(CorpusTest, CppConstraintKindsMatchFigure12) {
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  auto Kinds = Stats->localCppConstraintKinds();
  unsigned ExpectedIneq = 0, ExpectedStride = 0, ExpectedOpacity = 0;
  for (const DialectProfile &P : getDialectProfiles()) {
    ExpectedIneq += P.OpsLocalIntInequality;
    ExpectedStride += P.OpsLocalStrideCheck;
    ExpectedOpacity += P.OpsLocalStructOpacity;
  }
  EXPECT_EQ(Kinds[CppConstraintKind::IntegerInequality], ExpectedIneq);
  EXPECT_EQ(Kinds[CppConstraintKind::StrideCheck], ExpectedStride);
  EXPECT_EQ(Kinds[CppConstraintKind::StructOpacity], ExpectedOpacity);
  // The three categories are the only ones (Figure 12).
  EXPECT_EQ(Kinds[CppConstraintKind::Other], 0u);
}

TEST_F(CorpusTest, GrowthTimelineMatchesFigure3) {
  const auto &Timeline = getGrowthTimeline();
  PaperAggregates Paper;
  ASSERT_FALSE(Timeline.empty());
  EXPECT_EQ(Timeline.front().NumOps, Paper.GrowthStart);
  EXPECT_EQ(Timeline.back().NumOps, Paper.GrowthEnd);
  // Monotonic growth, 2.1x overall.
  for (size_t I = 1; I < Timeline.size(); ++I)
    EXPECT_GE(Timeline[I].NumOps, Timeline[I - 1].NumOps);
  EXPECT_NEAR(static_cast<double>(Paper.GrowthEnd) / Paper.GrowthStart,
              2.1, 0.05);
}

TEST_F(CorpusTest, NativeConstraintsBehave) {
  // The stride/opacity callbacks actually discriminate values.
  ASSERT_TRUE(static_cast<bool>(*Result)) << Diags->renderAll();
  IRDLLoadOptions Opts = corpusNativeOptions();
  TypeDefinition *Buffer = Ctx->resolveTypeDef("corpus_support.buffer");
  ASSERT_NE(Buffer, nullptr);

  auto MakeBuffer = [&](std::vector<int64_t> Strides,
                        std::string Opacity) {
    std::vector<ParamValue> StrideVals;
    for (int64_t S : Strides)
      StrideVals.emplace_back(IntVal{64, Signedness::Signed, S});
    return Ctx->getType(
        Buffer,
        {ParamValue(Ctx->getFloatType(32)),
         ParamValue(IntVal{32, Signedness::Unsigned, 8}),
         ParamValue(std::move(StrideVals)), ParamValue(Opacity)});
  };

  auto &Stride = Opts.NativeConstraints["stride_check"];
  EXPECT_TRUE(Stride(ParamValue(MakeBuffer({4, 1}, "opaque"))));
  EXPECT_FALSE(Stride(ParamValue(MakeBuffer({}, "opaque"))));
  EXPECT_FALSE(Stride(ParamValue(MakeBuffer({0}, "opaque"))));

  auto &Opacity = Opts.NativeConstraints["struct_opacity"];
  EXPECT_TRUE(Opacity(ParamValue(MakeBuffer({1}, "opaque"))));
  EXPECT_FALSE(Opacity(ParamValue(MakeBuffer({1}, "transparent"))));
}

TEST_F(CorpusTest, SynthesisIsDeterministic) {
  std::string A = synthesizeCorpusIRDL();
  std::string B = synthesizeCorpusIRDL();
  EXPECT_EQ(A, B);
  EXPECT_GT(A.size(), 10000u);
}

} // namespace
