//===- ServerTest.cpp - irdl_serve protocol & epoch tests ---------------===//
///
/// In-process coverage of the verification service: protocol framing and
/// error handling, one-shot and streamed verification, hot dialect
/// load/reload with epoch pinning for in-flight streams, concurrent
/// clients, and the METRICS endpoint. Each fixture runs a real
/// VerifyServer on a per-test unix socket with serve() on a background
/// thread — the same code path irdl_serve drives.

#include "bytecode/Bytecode.h"
#include "ir/IRParser.h"
#include "server/Client.h"
#include "server/Server.h"
#include "support/File.h"
#include "support/Threading.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unistd.h>

using namespace irdl;
using namespace irdl::serve;

namespace {

std::string testSocketPath(const char *Tag) {
  return "/tmp/irdl_server_test." + std::to_string(::getpid()) + "." + Tag +
         ".sock";
}

std::string cmathSource() {
  std::string Buffer, Error;
  EXPECT_TRUE(succeeded(readFileToString(
      std::string(IRDL_DIALECTS_DIR) + "/cmath.irdl", Buffer, Error)))
      << Error;
  return Buffer;
}

/// cmath.norm accepting only an f64 result — reloading this over the
/// bundled cmath flips the verdict of NormF32Module.
constexpr const char *StrictCmath = R"(
Dialect cmath {
  Alias !FloatType = !AnyOf<!f32, !f64>
  Type complex {
    Parameters (elementType: !FloatType)
  }
  Operation norm {
    Operands (c: !complex<!f32>)
    Results (res: !f64)
  }
}
)";

/// Valid against bundled cmath (norm: T=f32), invalid against StrictCmath.
constexpr const char *NormF32Module =
    R"(std.func @f(%c: !cmath.complex<f32>) -> f32 {
  %r = "cmath.norm"(%c) : (!cmath.complex<f32>) -> f32
  std.return %r : f32
}
)";

/// Parses against any epoch with cmath loaded but fails verification:
/// cmath.norm wants a !cmath.complex operand, not f32. The offending op
/// sits on line 2.
constexpr const char *BadNormModule =
    R"(std.func @bad(%c: f32) -> f32 {
  %r = "cmath.norm"(%c) : (f32) -> f32
  std.return %r : f32
}
)";

/// Runs serve() on a background thread for the duration of one test.
class ServerFixture {
public:
  explicit ServerFixture(const char *Tag)
      : Server(ServerOptions{testSocketPath(Tag)}) {
    std::string Error;
    if (failed(Server.start(Error))) {
      ADD_FAILURE() << "server start failed: " << Error;
      return;
    }
    Serving = std::thread([this]() { Server.serve(); });
  }

  ~ServerFixture() {
    Server.requestStop();
    if (Serving.joinable())
      Serving.join();
  }

  ServeClient connect() {
    ServeClient Client;
    std::string Error;
    EXPECT_TRUE(succeeded(Client.connect(Server.socketPath(), Error)))
        << Error;
    return Client;
  }

  VerifyServer Server;
  std::thread Serving;
};

TEST(ServerTest, PingAndShutdown) {
  ServerFixture Fixture("ping");
  ServeClient Client = Fixture.connect();
  ResponseFrame Response;
  std::string Error;
  ASSERT_TRUE(succeeded(Client.ping(Response, Error))) << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok);
  EXPECT_TRUE(Response.Payload.empty());

  ASSERT_TRUE(succeeded(Client.shutdown(Response, Error))) << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok);
  if (Fixture.Serving.joinable())
    Fixture.Serving.join();
  EXPECT_TRUE(Fixture.Server.stopRequested());
}

TEST(ServerTest, LoadDialectThenVerify) {
  ServerFixture Fixture("verify");
  ServeClient Client = Fixture.connect();
  ResponseFrame Response;
  std::string Error;

  // The boot epoch knows no cmath: the type in the module fails to parse.
  ASSERT_TRUE(
      succeeded(Client.verify("m.mlir", NormF32Module, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Fail);
  EXPECT_NE(Response.Payload.find("m.mlir:1:"), std::string::npos)
      << Response.Payload;

  ASSERT_TRUE(succeeded(
      Client.loadDialect("cmath.irdl", cmathSource(), Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
  EXPECT_EQ(Response.Payload, "2"); // boot epoch 1 -> 2

  ASSERT_TRUE(
      succeeded(Client.verify("m.mlir", NormF32Module, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
  EXPECT_TRUE(Response.Payload.empty());

  // A broken module reports rendered diagnostics with the buffer name.
  ASSERT_TRUE(
      succeeded(Client.verify("bad.mlir", BadNormModule, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Fail);
  EXPECT_NE(Response.Payload.find("bad.mlir:2:"), std::string::npos)
      << Response.Payload;
  EXPECT_NE(
      Response.Payload.find("IR failed to verify before the pipeline"),
      std::string::npos)
      << Response.Payload;
}

TEST(ServerTest, DuplicateLoadRejectedReloadAccepted) {
  ServerFixture Fixture("reload");
  ServeClient Client = Fixture.connect();
  ResponseFrame Response;
  std::string Error;

  ASSERT_TRUE(succeeded(
      Client.loadDialect("cmath.irdl", cmathSource(), Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;

  // Same dialect name again: LOAD refuses, RELOAD replaces.
  ASSERT_TRUE(succeeded(
      Client.loadDialect("strict.irdl", StrictCmath, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Fail);
  EXPECT_NE(Response.Payload.find("already loaded"), std::string::npos)
      << Response.Payload;
  EXPECT_EQ(Fixture.Server.epochs().currentEpochNumber(), 2u);

  ASSERT_TRUE(succeeded(
      Client.reloadDialect("strict.irdl", StrictCmath, Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
  EXPECT_EQ(Response.Payload, "3");

  // The module that satisfied bundled cmath fails the strict spec.
  ASSERT_TRUE(
      succeeded(Client.verify("m.mlir", NormF32Module, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Fail) << Response.Payload;
}

TEST(ServerTest, IdenticalReloadIsDeduplicated) {
  ServerFixture Fixture("dedup");
  ServeClient Client = Fixture.connect();
  ResponseFrame Response;
  std::string Error;

  ASSERT_TRUE(succeeded(
      Client.loadDialect("cmath.irdl", cmathSource(), Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
  std::shared_ptr<const Epoch> Before = Fixture.Server.epochs().current();

  // Byte-identical content: the content-hash dedup answers Ok with the
  // unchanged epoch number and publishes no new epoch at all.
  ASSERT_TRUE(succeeded(
      Client.reloadDialect("cmath.irdl", cmathSource(), Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
  EXPECT_EQ(Response.Payload, "2");
  EXPECT_EQ(Fixture.Server.epochs().current().get(), Before.get());

  // Actually different content still rebuilds.
  ASSERT_TRUE(succeeded(
      Client.reloadDialect("cmath.irdl", StrictCmath, Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
  EXPECT_EQ(Response.Payload, "3");
  EXPECT_NE(Fixture.Server.epochs().current().get(), Before.get());
}

TEST(ServerTest, FailedReloadKeepsPreviousEpoch) {
  ServerFixture Fixture("badreload");
  ServeClient Client = Fixture.connect();
  ResponseFrame Response;
  std::string Error;

  ASSERT_TRUE(succeeded(
      Client.loadDialect("cmath.irdl", cmathSource(), Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;

  ASSERT_TRUE(succeeded(Client.reloadDialect(
      "broken.irdl", "Dialect cmath { Operation oops {", Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Fail);
  EXPECT_FALSE(Response.Payload.empty());
  EXPECT_EQ(Fixture.Server.epochs().currentEpochNumber(), 2u);

  // The previous epoch still serves.
  ASSERT_TRUE(
      succeeded(Client.verify("m.mlir", NormF32Module, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
}

TEST(ServerTest, StreamedVerifyPinsEpochAcrossReload) {
  ServerFixture Fixture("pin");
  ServeClient Streamer = Fixture.connect();
  ServeClient Admin = Fixture.connect();
  ResponseFrame Response;
  std::string Error;

  ASSERT_TRUE(succeeded(
      Admin.loadDialect("cmath.irdl", cmathSource(), Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;

  ASSERT_TRUE(succeeded(Streamer.verifyBegin("s.mlir", Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok);
  ASSERT_TRUE(
      succeeded(Streamer.verifyChunk(NormF32Module, Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok);

  // Hot-reload mid-stream: the stream stays pinned to epoch 2; new
  // requests see epoch 3.
  ASSERT_TRUE(succeeded(
      Admin.reloadDialect("strict.irdl", StrictCmath, Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;

  ASSERT_TRUE(
      succeeded(Streamer.verifyChunk(NormF32Module, Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok);
  ASSERT_TRUE(succeeded(Streamer.verifyEnd(Response, Error))) << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;

  ASSERT_TRUE(
      succeeded(Admin.verify("m.mlir", NormF32Module, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Fail) << Response.Payload;
}

TEST(ServerTest, StreamFailFastAcrossChunks) {
  ServerFixture Fixture("stream");
  ServeClient Client = Fixture.connect();
  ResponseFrame Response;
  std::string Error;
  ASSERT_TRUE(succeeded(
      Client.loadDialect("cmath.irdl", cmathSource(), Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;

  ASSERT_TRUE(succeeded(Client.verifyBegin("s.mlir", Response, Error)))
      << Error;
  ASSERT_TRUE(succeeded(Client.verifyChunk(BadNormModule, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok); // verdict comes at END
  // Later chunks are acknowledged but skipped (fail-fast).
  ASSERT_TRUE(succeeded(Client.verifyChunk(NormF32Module, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok);
  ASSERT_TRUE(succeeded(Client.verifyEnd(Response, Error))) << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Fail);
  // Diagnostics carry the per-chunk buffer name; nothing from chunk 1.
  EXPECT_NE(Response.Payload.find("s.mlir:chunk0:2:"), std::string::npos)
      << Response.Payload;
  EXPECT_EQ(Response.Payload.find("chunk1"), std::string::npos)
      << Response.Payload;
}

TEST(ServerTest, StreamMisuseIsProtocolError) {
  ServerFixture Fixture("misuse");
  {
    ServeClient Client = Fixture.connect();
    ResponseFrame Response;
    std::string Error;
    ASSERT_TRUE(succeeded(Client.verifyChunk("x", Response, Error)))
        << Error;
    EXPECT_EQ(Response.Status, FrameStatus::ProtocolError);
    // The server closes the connection after a protocol error.
    EXPECT_TRUE(failed(Client.ping(Response, Error)));
  }
  {
    ServeClient Client = Fixture.connect();
    ResponseFrame Response;
    std::string Error;
    ASSERT_TRUE(succeeded(Client.verifyEnd(Response, Error))) << Error;
    EXPECT_EQ(Response.Status, FrameStatus::ProtocolError);
  }
  {
    // Double VERIFY_BEGIN.
    ServeClient Client = Fixture.connect();
    ResponseFrame Response;
    std::string Error;
    ASSERT_TRUE(succeeded(Client.verifyBegin("a", Response, Error)))
        << Error;
    ASSERT_EQ(Response.Status, FrameStatus::Ok);
    ASSERT_TRUE(succeeded(Client.verifyBegin("b", Response, Error)))
        << Error;
    EXPECT_EQ(Response.Status, FrameStatus::ProtocolError);
  }
  {
    // Truncated named-payload header.
    ServeClient Client = Fixture.connect();
    ResponseFrame Response;
    std::string Error;
    ASSERT_TRUE(
        succeeded(Client.call(FrameType::Verify, "", Response, Error)))
        << Error;
    EXPECT_EQ(Response.Status, FrameStatus::ProtocolError);
  }
}

TEST(ServerTest, UnknownFrameTypeClosesConnection) {
  ServerFixture Fixture("unknown");
  std::string Error;
  FileDescriptor Fd =
      connectUnixSocket(Fixture.Server.socketPath(), Error);
  ASSERT_TRUE(Fd.isValid()) << Error;
  // Type 99 with an empty payload.
  std::string Frame("\x63\x00\x00\x00\x00", 5);
  ASSERT_TRUE(sendAll(Fd.get(), Frame));
  ResponseFrame Response;
  ASSERT_EQ(readResponseFrame(Fd.get(), Response, Error), ReadOutcome::Ok)
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::ProtocolError);
  std::string Rest;
  EXPECT_FALSE(recvAll(Fd.get(), 1, Rest)); // closed
}

TEST(ServerTest, OversizedFrameIsProtocolError) {
  ServerFixture Fixture("oversize");
  std::string Error;
  FileDescriptor Fd =
      connectUnixSocket(Fixture.Server.socketPath(), Error);
  ASSERT_TRUE(Fd.isValid()) << Error;
  // PING with a 4 GiB-1 length prefix: rejected before any allocation.
  std::string Header("\x09\xff\xff\xff\xff", 5);
  ASSERT_TRUE(sendAll(Fd.get(), Header));
  ResponseFrame Response;
  ASSERT_EQ(readResponseFrame(Fd.get(), Response, Error), ReadOutcome::Ok)
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::ProtocolError);
  EXPECT_NE(Response.Payload.find("exceeds"), std::string::npos)
      << Response.Payload;
}

TEST(ServerTest, MetricsEndpointReportsServedRequests) {
  ServerFixture Fixture("metrics");
  ServeClient Client = Fixture.connect();
  ResponseFrame Response;
  std::string Error;
  ASSERT_TRUE(succeeded(Client.ping(Response, Error))) << Error;
  ASSERT_TRUE(succeeded(Client.metrics(Response, Error))) << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok);
  EXPECT_NE(Response.Payload.find("irdl_serve_requests_total"),
            std::string::npos);
  EXPECT_NE(
      Response.Payload.find(
          "irdl_serve_requests_total{status=\"ok\",type=\"PING\"}"),
      std::string::npos)
      << Response.Payload;
  EXPECT_NE(Response.Payload.find("irdl_serve_request_duration_ns"),
            std::string::npos);
  EXPECT_NE(Response.Payload.find("irdl_serve_epoch"), std::string::npos);
}

TEST(ServerTest, ConcurrentClients) {
  ServerFixture Fixture("concurrent");
  {
    ServeClient Admin = Fixture.connect();
    ResponseFrame Response;
    std::string Error;
    ASSERT_TRUE(succeeded(
        Admin.loadDialect("cmath.irdl", cmathSource(), Response, Error)))
        << Error;
    ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
  }

  constexpr unsigned NumClients = 8;
  constexpr unsigned RequestsPerClient = 16;
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Failures{0};
  for (unsigned T = 0; T != NumClients; ++T)
    Threads.emplace_back([&, T]() {
      ServeClient Client;
      std::string Error;
      if (failed(Client.connect(Fixture.Server.socketPath(), Error))) {
        ++Failures;
        return;
      }
      for (unsigned I = 0; I != RequestsPerClient; ++I) {
        ResponseFrame Response;
        std::string Name =
            "c" + std::to_string(T) + "_" + std::to_string(I) + ".mlir";
        if (failed(Client.verify(Name, NormF32Module, Response, Error)) ||
            Response.Status != FrameStatus::Ok)
          ++Failures;
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
}

TEST(ServerTest, BytecodeVerifyRejectsSpecPayloads) {
  ServerFixture Fixture("bcspecs");
  ServeClient Client = Fixture.connect();
  ResponseFrame Response;
  std::string Error;
  ASSERT_TRUE(succeeded(
      Client.loadDialect("cmath.irdl", cmathSource(), Response, Error)))
      << Error;
  ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;

  // Build a spec-bearing .irbc off to the side.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto Module = loadIRDL(Ctx, cmathSource(), SrcMgr, Diags);
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  BytecodeWriter Writer;
  Writer.addModuleSpecs(*Module);
  std::string SpecBuffer = Writer.write();
  ASSERT_TRUE(bytecodeBufferHasSpecs(SpecBuffer));

  ASSERT_TRUE(
      succeeded(Client.verify("specs.irbc", SpecBuffer, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Fail);
  EXPECT_NE(Response.Payload.find("module-only"), std::string::npos)
      << Response.Payload;

  // But the same buffer is a fine LOAD_DIALECT payload...
  ASSERT_TRUE(succeeded(
      Client.reloadDialect("cmath.irbc", SpecBuffer, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;

  // ...and a module-only buffer is a fine VERIFY payload.
  OwningOpRef M = parseSourceString(Ctx, NormF32Module, SrcMgr, Diags,
                                    "m.mlir");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  BytecodeWriter ModuleWriter;
  ModuleWriter.setModule(M.get());
  std::string ModuleBuffer = ModuleWriter.write();
  ASSERT_FALSE(bytecodeBufferHasSpecs(ModuleBuffer));
  ASSERT_TRUE(
      succeeded(Client.verify("m.irbc", ModuleBuffer, Response, Error)))
      << Error;
  EXPECT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
}

} // namespace
