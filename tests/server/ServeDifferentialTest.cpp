//===- ServeDifferentialTest.cpp - served vs irdl_opt diagnostics -------===//
///
/// Locks the tentpole guarantee of docs/serving.md: a one-shot VERIFY
/// response is byte-identical to what `irdl_opt --mt=N` prints for the
/// same input. The reference side reproduces irdl_opt's exact pipeline —
/// fresh context, dialect load, parse (or bytecode read), then
/// PassManager-style verification with the trailing "IR failed to verify
/// before the pipeline" error — while the served side goes over a real
/// socket to an in-process VerifyServer. Compared over every bundled
/// dialect with valid synthesized modules, attribute-dropping mutations,
/// hand-broken textual modules (caret rendering included), and
/// module-only bytecode, at --mt=1 and --mt=8.

#include "bytecode/Bytecode.h"
#include "corpus/ModuleSynthesizer.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "ir/Verifier.h"
#include "server/Client.h"
#include "server/Server.h"
#include "support/File.h"
#include "support/Threading.h"

#include <gtest/gtest.h>

#include <thread>
#include <unistd.h>

using namespace irdl;
using namespace irdl::serve;

namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { setGlobalThreadCount(0); }
};

std::string dialectPath(const char *File) {
  return std::string(IRDL_DIALECTS_DIR) + "/" + File;
}

/// What irdl_opt prints to stderr (and with what exit status) for textual
/// input \p Source with \p DialectFile loaded and an empty pass pipeline:
/// parse diagnostics on a parse error, otherwise verification diagnostics
/// plus the pipeline tag on a verify error, otherwise nothing.
struct ReferenceRun {
  bool Ok;
  std::string DiagText;
};

ReferenceRun referenceVerify(const std::string &DialectFile,
                             std::string_view Content,
                             const std::string &BufferName) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto Module = loadIRDLFile(Ctx, dialectPath(DialectFile.c_str()), SrcMgr,
                             Diags);
  EXPECT_NE(Module, nullptr) << Diags.renderAll();
  if (!Module)
    return {false, Diags.renderAll()};

  OwningOpRef M;
  if (isBytecodeBuffer(Content)) {
    BytecodeReader Reader(Ctx, Diags);
    BytecodeReadResult Result;
    if (failed(Reader.read(Content, Result)) || !Result.Module)
      return {false, Diags.renderAll()};
    M = std::move(Result.Module);
  } else {
    M = parseSourceString(Ctx, Content, SrcMgr, Diags, BufferName);
    if (!M)
      return {false, Diags.renderAll()};
  }

  DiagnosticEngine PipelineDiags(&SrcMgr);
  if (failed(verifyOp(M.get(), PipelineDiags))) {
    PipelineDiags.emitError(M->getLoc(),
                            "IR failed to verify before the pipeline");
    return {false, PipelineDiags.renderAll()};
  }
  return {true, ""};
}

class ServeDifferentialTest : public ::testing::Test {
protected:
  void SetUp() override {
    SocketPath = "/tmp/irdl_serve_diff." + std::to_string(::getpid()) +
                 ".sock";
    Server = std::make_unique<VerifyServer>(ServerOptions{SocketPath});
    std::string Error;
    ASSERT_TRUE(succeeded(Server->start(Error))) << Error;
    Serving = std::thread([this]() { Server->serve(); });
    ASSERT_TRUE(succeeded(Client.connect(SocketPath, Error))) << Error;
  }

  void TearDown() override {
    Server->requestStop();
    if (Serving.joinable())
      Serving.join();
    setGlobalThreadCount(0);
  }

  void loadBundledDialect(const char *File) {
    std::string Buffer, Error;
    ASSERT_TRUE(
        succeeded(readFileToString(dialectPath(File), Buffer, Error)))
        << Error;
    ResponseFrame Response;
    ASSERT_TRUE(succeeded(Client.loadDialect(File, Buffer, Response, Error)))
        << Error;
    ASSERT_EQ(Response.Status, FrameStatus::Ok) << Response.Payload;
  }

  /// Served and reference verification must agree byte for byte, at
  /// --mt=1 and --mt=8 (the thread count is process-wide, so it applies
  /// to the in-process server and the reference alike).
  void expectServedMatchesReference(const char *DialectFile,
                                    std::string_view Content,
                                    const std::string &BufferName) {
    for (unsigned MT : {1u, 8u}) {
      setGlobalThreadCount(MT);
      ReferenceRun Ref = referenceVerify(DialectFile, Content, BufferName);
      ResponseFrame Response;
      std::string Error;
      ASSERT_TRUE(
          succeeded(Client.verify(BufferName, Content, Response, Error)))
          << Error;
      EXPECT_EQ(Response.Status == FrameStatus::Ok, Ref.Ok)
          << BufferName << " at --mt=" << MT << "\nserved:\n"
          << Response.Payload << "\nreference:\n"
          << Ref.DiagText;
      EXPECT_EQ(Response.Payload, Ref.DiagText)
          << "served diagnostics diverged for " << BufferName
          << " at --mt=" << MT;
    }
  }

  std::string SocketPath;
  std::unique_ptr<VerifyServer> Server;
  std::thread Serving;
  ServeClient Client;
};

/// Drops the first attribute of every op that has one (the
/// CompiledConstraintDifferentialTest mutation): printed back to text,
/// the module exercises the failure replay path end to end.
unsigned mutateDropAttributes(Operation *M) {
  unsigned Mutated = 0;
  M->walk([&](Operation *Op) {
    if (!Op->getAttrs().empty()) {
      Op->removeAttr(Op->getAttrs().begin()->Name);
      ++Mutated;
    }
  });
  return Mutated;
}

constexpr const char *BundledDialects[] = {"cmath.irdl", "arith.irdl",
                                           "scf.irdl", "complex.irdl",
                                           "math.irdl"};

TEST_F(ServeDifferentialTest, SynthesizedModulesMatchOverText) {
  ThreadCountGuard Guard;
  for (const char *File : BundledDialects) {
    loadBundledDialect(File);

    // Synthesize against a scratch context, ship as text.
    IRContext Ctx;
    SourceMgr SrcMgr;
    DiagnosticEngine Diags(&SrcMgr);
    auto Module = loadIRDLFile(Ctx, dialectPath(File), SrcMgr, Diags);
    ASSERT_NE(Module, nullptr) << Diags.renderAll();
    for (const auto &Spec : Module->getDialects()) {
      OwningOpRef Valid = synthesizeModule(Ctx, *Spec);
      ASSERT_TRUE(static_cast<bool>(Valid)) << Spec->Name;
      PrintOptions Generic;
      Generic.GenericForm = true;
      std::string ValidText = printOpToString(Valid.get(), Generic) + "\n";
      expectServedMatchesReference(File, ValidText,
                                   Spec->Name + ".valid.mlir");

      OwningOpRef Mutated = synthesizeModule(Ctx, *Spec, {/*Seed=*/13});
      ASSERT_TRUE(static_cast<bool>(Mutated)) << Spec->Name;
      mutateDropAttributes(Mutated.get());
      std::string MutatedText =
          printOpToString(Mutated.get(), Generic) + "\n";
      expectServedMatchesReference(File, MutatedText,
                                   Spec->Name + ".mutated.mlir");
    }
  }
}

TEST_F(ServeDifferentialTest, BrokenTextualModulesMatchWithCarets) {
  ThreadCountGuard Guard;
  loadBundledDialect("cmath.irdl");

  // Verifier failure with caret rendering against the shipped source.
  const char *BadVerify = "std.func @bad(%c: f32) -> f32 {\n"
                          "  %r = \"cmath.norm\"(%c) : (f32) -> f32\n"
                          "  std.return %r : f32\n"
                          "}\n";
  expectServedMatchesReference("cmath.irdl", BadVerify, "bad_verify.mlir");

  // Parse failure: diagnostics come from the parser, not the verifier.
  const char *BadParse = "%c = \"cmath.norm\"(%%) : oops\n";
  expectServedMatchesReference("cmath.irdl", BadParse, "bad_parse.mlir");

  // Unknown type under a loaded dialect.
  const char *BadType = "std.func @t(%c: !cmath.nosuch<f32>) {\n"
                        "  std.return\n"
                        "}\n";
  expectServedMatchesReference("cmath.irdl", BadType, "bad_type.mlir");

  // And a valid one for the empty-diagnostics case.
  const char *Good =
      "std.func @good(%c: !cmath.complex<f32>) -> f32 {\n"
      "  %r = \"cmath.norm\"(%c) : (!cmath.complex<f32>) -> f32\n"
      "  std.return %r : f32\n"
      "}\n";
  expectServedMatchesReference("cmath.irdl", Good, "good.mlir");
}

TEST_F(ServeDifferentialTest, ModuleOnlyBytecodeMatches) {
  ThreadCountGuard Guard;
  loadBundledDialect("cmath.irdl");

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto Module =
      loadIRDLFile(Ctx, dialectPath("cmath.irdl"), SrcMgr, Diags);
  ASSERT_NE(Module, nullptr) << Diags.renderAll();

  for (const auto &Spec : Module->getDialects()) {
    for (uint64_t Seed : {1u, 13u}) {
      OwningOpRef M = synthesizeModule(Ctx, *Spec, {Seed});
      ASSERT_TRUE(static_cast<bool>(M)) << Spec->Name;
      if (Seed != 1)
        mutateDropAttributes(M.get());
      BytecodeWriter Writer;
      Writer.setModule(M.get());
      std::string Buffer = Writer.write();
      ASSERT_FALSE(bytecodeBufferHasSpecs(Buffer));
      expectServedMatchesReference(
          "cmath.irdl", Buffer,
          Spec->Name + ".seed" + std::to_string(Seed) + ".irbc");
    }
  }

  // Truncated bytecode over the wire: served and reference diagnostics
  // agree (the reader's structured corruption errors, no crash).
  OwningOpRef M = synthesizeModule(Ctx, *Module->getDialects()[0]);
  ASSERT_TRUE(static_cast<bool>(M));
  BytecodeWriter Writer;
  Writer.setModule(M.get());
  std::string Buffer = Writer.write();
  expectServedMatchesReference("cmath.irdl",
                               std::string_view(Buffer).substr(
                                   0, Buffer.size() / 2),
                               "truncated.irbc");
}

} // namespace
