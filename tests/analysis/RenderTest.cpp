//===- RenderTest.cpp - ASCII rendering utilities -------------------------===//

#include "analysis/Render.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace irdl;

namespace {

TEST(RenderTest, FormatPercent) {
  EXPECT_EQ(formatPercent(0.5), "50%");
  EXPECT_EQ(formatPercent(0.123, 1), "12.3%");
  EXPECT_EQ(formatPercent(0.0), "0%");
  EXPECT_EQ(formatPercent(1.0), "100%");
}

TEST(RenderTest, TextTableAlignsColumns) {
  TextTable T({"name", "count"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "22"});
  std::ostringstream OS;
  T.print(OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("| name        | count |"), std::string::npos);
  EXPECT_NE(Out.find("| longer-name | 22    |"), std::string::npos);
  // Separator rows (ending "+\n") at top, after header, and bottom.
  size_t Seps = 0, Pos = 0;
  while ((Pos = Out.find("+\n", Pos)) != std::string::npos) {
    ++Seps;
    Pos += 2;
  }
  EXPECT_EQ(Seps, 3u);
}

TEST(RenderTest, TextTableShortRowsTolerated) {
  TextTable T({"a", "b", "c"});
  T.addRow({"only-one"});
  std::ostringstream OS;
  T.print(OS);
  EXPECT_NE(OS.str().find("only-one"), std::string::npos);
}

TEST(RenderTest, StackedBarFillsWidth) {
  std::string Bar = stackedBar({0.5, 0.5}, 40);
  EXPECT_EQ(Bar.size(), 40u);
  EXPECT_EQ(Bar.substr(0, 20), std::string(20, '#'));
  EXPECT_EQ(Bar.substr(20), std::string(20, '='));
}

TEST(RenderTest, StackedBarHandlesRounding) {
  std::string Bar = stackedBar({1.0 / 3, 1.0 / 3, 1.0 / 3}, 40);
  EXPECT_EQ(Bar.size(), 40u);
}

TEST(RenderTest, StackedBarEmpty) {
  EXPECT_EQ(stackedBar({}, 10), std::string(10, ' '));
}

TEST(RenderTest, CountBarLinear) {
  EXPECT_EQ(countBar(10, 10, 20), std::string(20, '#'));
  EXPECT_EQ(countBar(5, 10, 20), std::string(10, '#'));
  EXPECT_EQ(countBar(0, 10, 20), "");
  // Small nonzero values get at least one glyph.
  EXPECT_EQ(countBar(0.01, 10, 20), "#");
}

TEST(RenderTest, CountBarLog) {
  std::string Small = countBar(3, 945, 40, /*LogScale=*/true);
  std::string Large = countBar(945, 945, 40, /*LogScale=*/true);
  EXPECT_LT(Small.size(), Large.size());
  EXPECT_EQ(Large.size(), 40u);
  // Log scale compresses: 3 of 945 still visible.
  EXPECT_GE(Small.size(), 4u);
}

TEST(RenderTest, PrintStackedFigureShape) {
  std::ostringstream OS;
  printStackedFigure(OS, "title", {"x", "y"},
                     {{"rowA", {0.25, 0.75}}, {"rowB", {1.0, 0.0}}},
                     {0.5, 0.5});
  std::string Out = OS.str();
  EXPECT_NE(Out.find("title"), std::string::npos);
  EXPECT_NE(Out.find("legend:"), std::string::npos);
  EXPECT_NE(Out.find("rowA"), std::string::npos);
  EXPECT_NE(Out.find("overall"), std::string::npos);
  EXPECT_NE(Out.find("25%"), std::string::npos);
}

} // namespace
