//===- StatisticsTest.cpp - Analysis library unit tests ------------------===//

#include "analysis/DialectStatistics.h"

#include "ir/Context.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class StatisticsTest : public ::testing::Test {
protected:
  StatisticsTest() : Diags(&SrcMgr) {}

  std::unique_ptr<IRDLModule> load(std::string_view Src,
                                   IRDLLoadOptions Opts = {}) {
    return loadIRDL(Ctx, Src, SrcMgr, Diags, Opts);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

TEST_F(StatisticsTest, ParamKindClassification) {
  auto M = load(R"(
    Dialect k {
      Enum mode { A, B }
      TypeOrAttrParam Special { CppClassName "K" }
      Type t {
        Parameters (a: !AnyType, b: #AnyAttr, c: uint32_t, d: string,
                    e: float32_t, f: mode, g: location, h: type_id,
                    i: Special, j: array<int32_t>, k: AnyOf<!f32, !f64>)
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  const TypeOrAttrSpec *T = M->lookupDialect("k")->lookupType("t");
  auto Kind = [&](unsigned I) {
    return classifyParamKind(T->Params[I].Constr);
  };
  EXPECT_EQ(Kind(0), ParamKind::AttrOrType);
  EXPECT_EQ(Kind(1), ParamKind::AttrOrType);
  EXPECT_EQ(Kind(2), ParamKind::Integer);
  EXPECT_EQ(Kind(3), ParamKind::String);
  EXPECT_EQ(Kind(4), ParamKind::Float);
  EXPECT_EQ(Kind(5), ParamKind::Enum);
  EXPECT_EQ(Kind(6), ParamKind::Location);
  EXPECT_EQ(Kind(7), ParamKind::TypeId);
  EXPECT_EQ(Kind(8), ParamKind::DomainSpecific);
  EXPECT_EQ(Kind(9), ParamKind::Integer);    // array<int32_t>
  EXPECT_EQ(Kind(10), ParamKind::AttrOrType); // uniform AnyOf
}

TEST_F(StatisticsTest, OpRecords) {
  auto M = load(R"(
    Dialect s {
      Operation simple {
        Operands (a: !f32, b: !f32)
        Results (r: !f32)
        Attributes (k: #builtin.int)
      }
      Operation shaped {
        Operands (xs: Variadic<!f32>, o: Optional<!i32>)
        Region body { }
        Successors (next)
        CppConstraint "$_self.numOperands >= 1"
      }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  CorpusStatistics Stats =
      CorpusStatistics::compute(M->Dialects);
  const DialectStatistics *D = Stats.lookup("s");
  ASSERT_NE(D, nullptr);
  ASSERT_EQ(D->Ops.size(), 2u);

  const OpRecord &Simple = D->Ops[0];
  EXPECT_EQ(Simple.NumOperandDefs, 2u);
  EXPECT_EQ(Simple.NumVariadicOperandDefs, 0u);
  EXPECT_EQ(Simple.NumResultDefs, 1u);
  EXPECT_EQ(Simple.NumAttrDefs, 1u);
  EXPECT_EQ(Simple.NumRegionDefs, 0u);
  EXPECT_FALSE(Simple.IsTerminator);
  EXPECT_TRUE(Simple.LocalConstraintsInIRDL);
  EXPECT_FALSE(Simple.NeedsCppVerifier);

  const OpRecord &Shaped = D->Ops[1];
  EXPECT_EQ(Shaped.NumVariadicOperandDefs, 2u);
  EXPECT_EQ(Shaped.NumRegionDefs, 1u);
  EXPECT_TRUE(Shaped.IsTerminator);
  EXPECT_TRUE(Shaped.NeedsCppVerifier);
}

TEST_F(StatisticsTest, Distributions) {
  auto M = load(R"(
    Dialect d {
      Operation a { }
      Operation b { Operands (x: !f32) }
      Operation c { Operands (x: !f32, y: !f32) }
      Operation e { Operands (x: !f32, y: !f32, z: !f32, w: !f32) }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  CorpusStatistics Stats = CorpusStatistics::compute(M->Dialects);
  Distribution OpDist = Stats.operandCountDist();
  EXPECT_EQ(OpDist.Total, 4u);
  EXPECT_EQ(OpDist.Counts[0], 1u);
  EXPECT_EQ(OpDist.Counts[1], 1u);
  EXPECT_EQ(OpDist.Counts[2], 1u);
  EXPECT_EQ(OpDist.Counts[3], 1u); // 4 operands lands in the 3+ bucket
  EXPECT_DOUBLE_EQ(OpDist.fraction(1), 0.25);
}

TEST_F(StatisticsTest, ExpressibilityBuckets) {
  IRDLLoadOptions Opts;
  Opts.NativeConstraints["n"] = [](const ParamValue &) { return true; };
  auto M = load(R"(
    Dialect e {
      TypeOrAttrParam P { CppClassName "X" }
      Type pure { Parameters (a: uint32_t) }
      Type needs_param { Parameters (a: P) }
      Type needs_verifier { Parameters (a: uint32_t)
                            CppConstraint "$_self.a <= 4" }
      Attribute pure_attr { Parameters (v: string) }
      Operation op_pure { Operands (x: !f32) }
      Operation op_cpp { CppConstraint "$_self.numResults == 0" }
    }
  )",
                Opts);
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  CorpusStatistics Stats = CorpusStatistics::compute(M->Dialects);

  auto TP = Stats.typeParamExpressibility();
  EXPECT_EQ(TP.PureIRDL, 2u);
  EXPECT_EQ(TP.NeedsCpp, 1u);
  auto TV = Stats.typeVerifierExpressibility();
  EXPECT_EQ(TV.NeedsCpp, 1u);
  auto AP = Stats.attrParamExpressibility();
  EXPECT_EQ(AP.PureIRDL, 1u);
  EXPECT_EQ(AP.NeedsCpp, 0u);

  auto OV = Stats.opVerifierExpressibility();
  EXPECT_EQ(OV.PureIRDL, 1u);
  EXPECT_EQ(OV.NeedsCpp, 1u);
  EXPECT_DOUBLE_EQ(OV.cppFraction(), 0.5);
}

TEST_F(StatisticsTest, LocationAndTypeIdAreNotCpp) {
  auto M = load(R"(
    Dialect loc {
      Attribute l { Parameters (x: location, y: type_id) }
    }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  CorpusStatistics Stats = CorpusStatistics::compute(M->Dialects);
  auto AP = Stats.attrParamExpressibility();
  EXPECT_EQ(AP.PureIRDL, 1u);
  EXPECT_EQ(AP.NeedsCpp, 0u);
}

TEST_F(StatisticsTest, LocalCppKindCategorization) {
  IRDLLoadOptions Opts;
  Opts.NativeConstraints["stride_check"] =
      [](const ParamValue &) { return true; };
  Opts.NativeConstraints["struct_opacity"] =
      [](const ParamValue &) { return true; };
  auto M = load(R"(
    Dialect f12 {
      Type buf { Parameters (w: uint32_t) }
      Constraint Bounded : !buf { CppConstraint "$_self.w <= 64" }
      Constraint Strided : !buf { CppConstraint "native:stride_check" }
      Constraint Opaque : !buf { CppConstraint "native:struct_opacity" }
      Operation ineq { Operands (a: Bounded) }
      Operation stride { Operands (a: Strided) }
      Operation opac { Operands (a: Opaque) }
      Operation clean { Operands (a: !buf) }
    }
  )",
                Opts);
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  CorpusStatistics Stats = CorpusStatistics::compute(M->Dialects);
  auto Kinds = Stats.localCppConstraintKinds();
  EXPECT_EQ(Kinds[CppConstraintKind::IntegerInequality], 1u);
  EXPECT_EQ(Kinds[CppConstraintKind::StrideCheck], 1u);
  EXPECT_EQ(Kinds[CppConstraintKind::StructOpacity], 1u);

  auto Local = Stats.opLocalConstraintExpressibility();
  EXPECT_EQ(Local.NeedsCpp, 3u);
  EXPECT_EQ(Local.PureIRDL, 1u);
}

TEST_F(StatisticsTest, DialectFractionWithOp) {
  auto M = load(R"(
    Dialect one { Operation a { Operands (x: Variadic<!f32>) } }
    Dialect two { Operation b { Operands (x: !f32) } }
  )");
  ASSERT_NE(M, nullptr) << Diags.renderAll();
  CorpusStatistics Stats = CorpusStatistics::compute(M->Dialects);
  double Frac = Stats.dialectFractionWithOp(
      [](const OpRecord &R) { return R.NumVariadicOperandDefs > 0; });
  EXPECT_DOUBLE_EQ(Frac, 0.5);
}

} // namespace
