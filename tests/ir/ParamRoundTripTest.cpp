//===- ParamRoundTripTest.cpp - Parameter syntax round trips --------------===//
///
/// Property sweep: every ParamValue kind, embedded as the parameter of a
/// type, prints to text that reparses to the *same uniqued type handle*.

#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

struct Pool {
  IRContext Ctx;
  TypeDefinition *Box;
  EnumDef *Mode;
  std::vector<ParamValue> Values;

  Pool() {
    Dialect *D = Ctx.getOrCreateDialect("p");
    Box = D->addType("box");
    Box->setParamNames({"v"});
    Mode = D->addEnum("mode", {"A", "B", "C"});

    Values.emplace_back(Ctx.getFloatType(32));
    Values.emplace_back(Ctx.getIntegerType(32));
    Values.emplace_back(Ctx.getIntegerType(8, Signedness::Signed));
    Values.emplace_back(Ctx.getIndexType());
    Values.emplace_back(Ctx.getFunctionType({Ctx.getIntegerType(32)},
                                            {Ctx.getFloatType(64)}));
    Values.emplace_back(Ctx.getIntegerAttr(42, 32));
    Values.emplace_back(Ctx.getIntegerAttr(-7, 16, Signedness::Signed));
    Values.emplace_back(Ctx.getFloatAttr(2.5, 32));
    Values.emplace_back(Ctx.getStringAttr("hello \"world\""));
    Values.emplace_back(Ctx.getTypeAttr(Ctx.getFloatType(32)));
    Values.emplace_back(Ctx.getUnitAttr());
    Values.emplace_back(
        Ctx.getArrayAttr({Ctx.getIntegerAttr(1, 32), Ctx.getUnitAttr()}));
    Values.emplace_back(Ctx.getEnumAttr(EnumVal{Mode, 1}));
    Values.emplace_back(IntVal{32, Signedness::Signless, 9});
    Values.emplace_back(IntVal{64, Signedness::Signed, -3});
    Values.emplace_back(IntVal{8, Signedness::Unsigned, 255});
    Values.emplace_back(FloatVal{32, 1.5});
    Values.emplace_back(FloatVal{64, -0.125});
    Values.emplace_back(FloatVal{64, 1e100});
    Values.emplace_back(std::string("plain"));
    Values.emplace_back(std::string("esc \"q\" \\ \n\t"));
    Values.emplace_back(std::string(""));
    Values.emplace_back(EnumVal{Mode, 0});
    Values.emplace_back(EnumVal{Mode, 2});
    Values.emplace_back(std::vector<ParamValue>{});
    Values.emplace_back(std::vector<ParamValue>{
        ParamValue(IntVal{32, Signedness::Signless, 1}),
        ParamValue(std::string("x")),
        ParamValue(Ctx.getFloatType(32))});
    Values.emplace_back(OpaqueVal{"location", "file.c:3:4"});
    Values.emplace_back(OpaqueVal{"type_id", "0xdeadbeef"});
  }
};

Pool &pool() {
  static Pool P;
  return P;
}

class ParamRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(ParamRoundTripTest, TypeEmbeddingRoundTrips) {
  Pool &P = pool();
  const ParamValue &V = P.Values[static_cast<size_t>(GetParam())];
  Type T = P.Ctx.getType(P.Box, {V});
  std::string Text = T.str();

  DiagnosticEngine Diags;
  Type Back = parseTypeString(P.Ctx, Text, Diags);
  ASSERT_TRUE(static_cast<bool>(Back))
      << "text was: " << Text << "\n"
      << Diags.renderAll();
  EXPECT_EQ(Back, T) << "text was: " << Text;
}

TEST_P(ParamRoundTripTest, ParamPrintingIsStable) {
  Pool &P = pool();
  const ParamValue &V = P.Values[static_cast<size_t>(GetParam())];
  EXPECT_EQ(V.str(), V.str());
  // Hash is consistent with equality.
  ParamValue Copy = V;
  EXPECT_EQ(Copy, V);
  EXPECT_EQ(Copy.hash(), V.hash());
}

INSTANTIATE_TEST_SUITE_P(Kinds, ParamRoundTripTest,
                         ::testing::Range(0, 28));

} // namespace
