//===- OperationTest.cpp - Operation construction ----------------------===//

#include "ir/Context.h"
#include "ir/Block.h"
#include "ir/Builder.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class OperationTest : public ::testing::Test {
protected:
  OperationTest() {
    Ctx.setAllowUnregisteredOps(true);
    D = Ctx.getOrCreateDialect("test");
    ProduceDef = D->addOp("produce");
    ConsumeDef = D->addOp("consume");
  }

  Operation *makeProduce(Type Ty) {
    OperationState State(Ctx, OperationName(ProduceDef));
    State.ResultTypes.push_back(Ty);
    return Operation::create(State);
  }

  IRContext Ctx;
  Dialect *D = nullptr;
  OpDefinition *ProduceDef = nullptr;
  OpDefinition *ConsumeDef = nullptr;
};

TEST_F(OperationTest, CreateWithResults) {
  Operation *Op = makeProduce(Ctx.getFloatType(32));
  EXPECT_EQ(Op->getNumResults(), 1u);
  EXPECT_EQ(Op->getResult(0).getType(), Ctx.getFloatType(32));
  EXPECT_EQ(Op->getResult(0).getDefiningOp(), Op);
  EXPECT_EQ(Op->getResult(0).getIndex(), 0u);
  EXPECT_EQ(Op->getName().str(), "test.produce");
  EXPECT_TRUE(Op->isRegistered());
  Op->destroy();
}

TEST_F(OperationTest, CreateWithOperands) {
  Operation *P = makeProduce(Ctx.getFloatType(32));
  OperationState State(Ctx, OperationName(ConsumeDef));
  State.Operands.push_back(P->getResult(0));
  Operation *C = Operation::create(State);
  EXPECT_EQ(C->getNumOperands(), 1u);
  EXPECT_EQ(C->getOperand(0), P->getResult(0));
  EXPECT_FALSE(P->use_empty());
  C->destroy();
  EXPECT_TRUE(P->use_empty());
  P->destroy();
}

TEST_F(OperationTest, Attributes) {
  Operation *Op = makeProduce(Ctx.getFloatType(32));
  Op->setAttr("flag", Ctx.getUnitAttr());
  Op->setAttr("count", Ctx.getIntegerAttr(4, 32));
  EXPECT_EQ(Op->getAttr("count"), Ctx.getIntegerAttr(4, 32));
  EXPECT_FALSE(static_cast<bool>(Op->getAttr("missing")));
  EXPECT_TRUE(Op->removeAttr("flag"));
  EXPECT_FALSE(Op->removeAttr("flag"));
  Op->destroy();
}

TEST_F(OperationTest, NamedAttrListIsSorted) {
  NamedAttrList L;
  IRContext C2;
  L.set("zeta", C2.getUnitAttr());
  L.set("alpha", C2.getUnitAttr());
  L.set("mid", C2.getUnitAttr());
  std::vector<std::string> Names;
  for (const NamedAttribute &NA : L)
    Names.push_back(NA.Name);
  EXPECT_EQ(Names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST_F(OperationTest, SetOperandsGrowAndShrink) {
  Operation *A = makeProduce(Ctx.getFloatType(32));
  Operation *B = makeProduce(Ctx.getFloatType(32));
  OperationState State(Ctx, OperationName(ConsumeDef));
  Operation *C = Operation::create(State);

  C->setOperands({A->getResult(0), B->getResult(0)});
  EXPECT_EQ(C->getNumOperands(), 2u);
  EXPECT_FALSE(A->use_empty());
  EXPECT_FALSE(B->use_empty());

  C->setOperands({B->getResult(0)});
  EXPECT_EQ(C->getNumOperands(), 1u);
  EXPECT_TRUE(A->use_empty());
  EXPECT_FALSE(B->use_empty());

  C->setOperands({});
  EXPECT_TRUE(B->use_empty());
  C->destroy();
  A->destroy();
  B->destroy();
}

TEST_F(OperationTest, EraseOperand) {
  Operation *A = makeProduce(Ctx.getFloatType(32));
  Operation *B = makeProduce(Ctx.getFloatType(64));
  OperationState State(Ctx, OperationName(ConsumeDef));
  State.Operands = {A->getResult(0), B->getResult(0)};
  Operation *C = Operation::create(State);
  C->eraseOperand(0);
  EXPECT_EQ(C->getNumOperands(), 1u);
  EXPECT_EQ(C->getOperand(0), B->getResult(0));
  EXPECT_TRUE(A->use_empty());
  C->destroy();
  A->destroy();
  B->destroy();
}

TEST_F(OperationTest, MultipleResults) {
  OperationState State(Ctx, OperationName(ProduceDef));
  State.ResultTypes = {Ctx.getFloatType(32), Ctx.getIntegerType(32)};
  Operation *Op = Operation::create(State);
  EXPECT_EQ(Op->getNumResults(), 2u);
  EXPECT_EQ(Op->getResult(1).getIndex(), 1u);
  auto Types = Op->getResultTypes();
  EXPECT_EQ(Types[1], Ctx.getIntegerType(32));
  Op->destroy();
}

TEST_F(OperationTest, RegionsInState) {
  OperationState State(Ctx, OperationName(ProduceDef));
  Region *R = State.addRegion();
  Block *B = Block::create(Ctx);
  R->push_back(B);
  Operation *Op = Operation::create(State);
  EXPECT_EQ(Op->getNumRegions(), 1u);
  EXPECT_EQ(Op->getRegion(0).getNumBlocks(), 1u);
  EXPECT_EQ(Op->getRegion(0).front().getParent(), &Op->getRegion(0));
  EXPECT_EQ(Op->getRegion(0).getParentOp(), Op);
  Op->destroy();
}

TEST_F(OperationTest, WalkVisitsNestedOps) {
  OperationState State(Ctx, OperationName(ProduceDef));
  Region *R = State.addRegion();
  Block *B = Block::create(Ctx);
  R->push_back(B);
  OperationState Inner(Ctx, OperationName(ConsumeDef));
  B->push_back(Operation::create(Inner));
  Operation *Op = Operation::create(State);

  int Count = 0;
  Op->walk([&](Operation *) { ++Count; });
  EXPECT_EQ(Count, 2);
  Op->destroy();
}

TEST_F(OperationTest, ParentChain) {
  OperationState State(Ctx, OperationName(ProduceDef));
  Region *R = State.addRegion();
  Block *B = Block::create(Ctx);
  R->push_back(B);
  OperationState InnerState(Ctx, OperationName(ConsumeDef));
  Operation *Inner = Operation::create(InnerState);
  B->push_back(Inner);
  Operation *Outer = Operation::create(State);

  EXPECT_EQ(Inner->getParentOp(), Outer);
  EXPECT_EQ(Outer->getParentOp(), nullptr);
  EXPECT_EQ(Inner->getBlock()->getParentOp(), Outer);
  Outer->destroy();
}

TEST_F(OperationTest, UnregisteredOperation) {
  OperationState State(Ctx, OperationName(std::string("mystery.op")));
  Operation *Op = Operation::create(State);
  EXPECT_FALSE(Op->isRegistered());
  EXPECT_EQ(Op->getDef(), nullptr);
  EXPECT_EQ(Op->getName().str(), "mystery.op");
  Op->destroy();
}

} // namespace
