//===- AttrTest.cpp - Attribute uniquing and builtin attrs -------------===//

#include "ir/Context.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

TEST(AttrTest, IntegerAttrUniquing) {
  IRContext Ctx;
  EXPECT_EQ(Ctx.getIntegerAttr(3, 32), Ctx.getIntegerAttr(3, 32));
  EXPECT_NE(Ctx.getIntegerAttr(3, 32), Ctx.getIntegerAttr(4, 32));
  EXPECT_NE(Ctx.getIntegerAttr(3, 32), Ctx.getIntegerAttr(3, 64));
}

TEST(AttrTest, FloatAttr) {
  IRContext Ctx;
  Attribute A = Ctx.getFloatAttr(2.5, 32);
  EXPECT_EQ(A.getParam("value").getFloat().Value, 2.5);
  EXPECT_EQ(A.getParam("value").getFloat().Width, 32);
  EXPECT_EQ(A, Ctx.getFloatAttr(2.5, 32));
}

TEST(AttrTest, StringAttr) {
  IRContext Ctx;
  Attribute A = Ctx.getStringAttr("conorm");
  EXPECT_EQ(A.getParam("value").getString(), "conorm");
  EXPECT_EQ(A, Ctx.getStringAttr("conorm"));
  EXPECT_NE(A, Ctx.getStringAttr("other"));
}

TEST(AttrTest, TypeAttr) {
  IRContext Ctx;
  Attribute A = Ctx.getTypeAttr(Ctx.getFloatType(32));
  EXPECT_EQ(A.getParam("type").getType(), Ctx.getFloatType(32));
}

TEST(AttrTest, UnitAttr) {
  IRContext Ctx;
  EXPECT_EQ(Ctx.getUnitAttr(), Ctx.getUnitAttr());
  EXPECT_TRUE(Ctx.getUnitAttr().getParams().empty());
}

TEST(AttrTest, ArrayAttr) {
  IRContext Ctx;
  Attribute Arr = Ctx.getArrayAttr(
      {Ctx.getIntegerAttr(1, 32), Ctx.getIntegerAttr(2, 32)});
  EXPECT_EQ(Arr.getParam("elements").getArray().size(), 2u);
  EXPECT_EQ(Arr, Ctx.getArrayAttr({Ctx.getIntegerAttr(1, 32),
                                   Ctx.getIntegerAttr(2, 32)}));
  EXPECT_NE(Arr, Ctx.getArrayAttr({Ctx.getIntegerAttr(2, 32),
                                   Ctx.getIntegerAttr(1, 32)}));
}

TEST(AttrTest, CustomAttrDefinition) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("cmath");
  AttrDefinition *Def = D->addAttr("fraction");
  Def->setParamNames({"num", "den"});
  Attribute Half = Ctx.getAttr(
      Def, {ParamValue(IntVal{32, {}, 1}), ParamValue(IntVal{32, {}, 2})});
  EXPECT_EQ(Half.getName(), "cmath.fraction");
  EXPECT_EQ(Half.getParam("den").getInt().Value, 2);
}

TEST(AttrTest, CheckedAttrConstruction) {
  IRContext Ctx;
  DiagnosticEngine Diags;
  // builtin.int rejects a string parameter.
  Attribute Bad = Ctx.getAttrChecked(
      Ctx.getIntAttrDef(), {ParamValue(std::string("oops"))}, Diags);
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_TRUE(Diags.hadError());
}

TEST(AttrTest, AttrAsTypeParameter) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("t");
  TypeDefinition *Def = D->addType("annotated");
  Def->setParamNames({"note"});
  Type T = Ctx.getType(Def, {ParamValue(Ctx.getStringAttr("hi"))});
  EXPECT_TRUE(T.getParam("note").isAttr());
  EXPECT_EQ(T.getParam("note").getAttr(), Ctx.getStringAttr("hi"));
}

TEST(AttrTest, OpaqueParamCodecs) {
  IRContext Ctx;
  const OpaqueParamCodec *Loc = Ctx.lookupOpaqueParamCodec("location");
  ASSERT_NE(Loc, nullptr);
  EXPECT_EQ(Loc->Parse("file.c:10:2"), "file.c:10:2");
  EXPECT_EQ(Ctx.lookupOpaqueParamCodec("no_such_codec"), nullptr);

  OpaqueParamCodec Custom;
  Custom.Print = [](const OpaqueVal &V) { return V.Payload; };
  Custom.Parse = [](std::string_view P) -> std::optional<std::string> {
    if (P.empty())
      return std::nullopt;
    return std::string(P);
  };
  Ctx.registerOpaqueParamCodec("llvm_struct", Custom);
  const OpaqueParamCodec *C = Ctx.lookupOpaqueParamCodec("llvm_struct");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Parse(""), std::nullopt);
}

} // namespace
