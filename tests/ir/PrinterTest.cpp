//===- PrinterTest.cpp - Textual printing ------------------------------===//

#include "ir/Context.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class PrinterTest : public ::testing::Test {
protected:
  IRContext Ctx;
};

TEST_F(PrinterTest, BuiltinTypeSugar) {
  EXPECT_EQ(Ctx.getFloatType(32).str(), "f32");
  EXPECT_EQ(Ctx.getFloatType(16).str(), "f16");
  EXPECT_EQ(Ctx.getIndexType().str(), "index");
  EXPECT_EQ(Ctx.getIntegerType(32).str(), "i32");
  EXPECT_EQ(Ctx.getIntegerType(8, Signedness::Signed).str(), "si8");
  EXPECT_EQ(Ctx.getIntegerType(16, Signedness::Unsigned).str(), "ui16");
}

TEST_F(PrinterTest, FunctionTypeSyntax) {
  Type FT = Ctx.getFunctionType({Ctx.getIntegerType(32)},
                                {Ctx.getFloatType(32)});
  EXPECT_EQ(FT.str(), "(i32) -> f32");
  Type Multi = Ctx.getFunctionType({}, {Ctx.getFloatType(32),
                                        Ctx.getFloatType(64)});
  EXPECT_EQ(Multi.str(), "() -> (f32, f64)");
}

TEST_F(PrinterTest, DialectTypeWithParams) {
  Dialect *D = Ctx.getOrCreateDialect("cmath");
  TypeDefinition *Complex = D->addType("complex");
  Complex->setParamNames({"elementType"});
  Type C = Ctx.getType(Complex, {ParamValue(Ctx.getFloatType(32))});
  EXPECT_EQ(C.str(), "!cmath.complex<f32>");
  TypeDefinition *Empty = D->addType("unitary");
  EXPECT_EQ(Ctx.getType(Empty).str(), "!cmath.unitary");
}

TEST_F(PrinterTest, AttrSugar) {
  EXPECT_EQ(Ctx.getIntegerAttr(3, 32).str(), "3 : i32");
  EXPECT_EQ(Ctx.getIntegerAttr(-5, 8, Signedness::Signed).str(),
            "-5 : si8");
  EXPECT_EQ(Ctx.getStringAttr("hi\"x").str(), "\"hi\\\"x\"");
  EXPECT_EQ(Ctx.getUnitAttr().str(), "unit");
  EXPECT_EQ(Ctx.getTypeAttr(Ctx.getFloatType(32)).str(), "f32");
  EXPECT_EQ(Ctx.getArrayAttr({Ctx.getIntegerAttr(1, 32),
                              Ctx.getIntegerAttr(2, 32)})
                .str(),
            "[1 : i32, 2 : i32]");
}

TEST_F(PrinterTest, FloatAttrPrinting) {
  EXPECT_EQ(Ctx.getFloatAttr(2.5, 32).str(), "2.5 : f32");
  EXPECT_EQ(Ctx.getFloatAttr(1.0, 64).str(), "1.0 : f64");
}

TEST_F(PrinterTest, ParamPrinting) {
  EXPECT_EQ(ParamValue(IntVal{32, Signedness::Signless, 9}).str(),
            "9 : i32");
  EXPECT_EQ(ParamValue(std::string("s")).str(), "\"s\"");
  EXPECT_EQ(ParamValue(EnumVal{Ctx.getSignednessEnum(), 1}).str(),
            "builtin.signedness.Signed");
  EXPECT_EQ(ParamValue(OpaqueVal{"location", "a.c:1:2"}).str(),
            "opaque<\"location\", \"a.c:1:2\">");
  std::vector<ParamValue> Elems;
  Elems.emplace_back(IntVal{32, {}, 1});
  EXPECT_EQ(ParamValue(std::move(Elems)).str(), "[1 : i32]");
  // Attribute params print canonically, not with sugar.
  EXPECT_EQ(ParamValue(Ctx.getIntegerAttr(3, 32)).str(),
            "#builtin.int<3 : i32>");
}

TEST_F(PrinterTest, GenericOpForm) {
  Dialect *D = Ctx.getOrCreateDialect("test");
  OpDefinition *Def = D->addOp("source");
  OpDefinition *Sink = D->addOp("sink");

  Block &B = *Block::create(Ctx);
  OpBuilder Builder(&Ctx);
  Builder.setInsertionPointToEnd(&B);
  OperationState S1(Ctx, OperationName(Def));
  S1.ResultTypes.push_back(Ctx.getFloatType(32));
  Operation *Src = Builder.create(S1);
  OperationState S2(Ctx, OperationName(Sink));
  S2.Operands.push_back(Src->getResult(0));
  Operation *Snk = Builder.create(S2);

  EXPECT_EQ(Src->str(), "%0 = \"test.source\"() : () -> (f32)");
  EXPECT_EQ(Snk->str(), "\"test.sink\"(%0) : (f32) -> ()");
  B.destroy();
}

TEST_F(PrinterTest, MultiResultNaming) {
  Dialect *D = Ctx.getOrCreateDialect("test");
  OpDefinition *Def = D->addOp("pair");
  OpDefinition *Use = D->addOp("use");
  Block &B = *Block::create(Ctx);
  OpBuilder Builder(&Ctx);
  Builder.setInsertionPointToEnd(&B);
  OperationState S(Ctx, OperationName(Def));
  S.ResultTypes = {Ctx.getFloatType(32), Ctx.getIntegerType(1)};
  Operation *P = Builder.create(S);
  OperationState U(Ctx, OperationName(Use));
  U.Operands = {P->getResult(1), P->getResult(0)};
  Operation *UOp = Builder.create(U);

  EXPECT_EQ(P->str(), "%0:2 = \"test.pair\"() : () -> (f32, i1)");
  EXPECT_EQ(UOp->str(), "\"test.use\"(%0#1, %0#0) : (i1, f32) -> ()");
  B.destroy();
}

TEST_F(PrinterTest, AttrDictAndUnitElision) {
  Dialect *D = Ctx.getOrCreateDialect("test");
  OpDefinition *Def = D->addOp("attrs");
  OperationState S(Ctx, OperationName(Def));
  S.addAttribute("b", Ctx.getIntegerAttr(1, 32));
  S.addAttribute("a", Ctx.getUnitAttr());
  Operation *Op = Operation::create(S);
  EXPECT_EQ(Op->str(), "\"test.attrs\"() {a, b = 1 : i32} : () -> ()");
  Op->destroy();
}

TEST_F(PrinterTest, RegionPrinting) {
  Dialect *D = Ctx.getOrCreateDialect("test");
  OpDefinition *Wrap = D->addOp("wrap");
  OpDefinition *Inner = D->addOp("inner");
  OperationState S(Ctx, OperationName(Wrap));
  Region *R = S.addRegion();
  Block *B = Block::create(Ctx);
  R->push_back(B);
  OperationState IS(Ctx, OperationName(Inner));
  B->push_back(Operation::create(IS));
  Operation *Op = Operation::create(S);
  EXPECT_EQ(Op->str(), "\"test.wrap\"() ({\n"
                       "  \"test.inner\"() : () -> ()\n"
                       "}) : () -> ()");
  Op->destroy();
}

TEST_F(PrinterTest, FloatLiteralRoundTrippable) {
  std::ostringstream OS;
  printFloatLiteral(0.1, OS);
  EXPECT_EQ(std::strtod(OS.str().c_str(), nullptr), 0.1);
}

} // namespace
