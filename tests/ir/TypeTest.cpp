//===- TypeTest.cpp - Type uniquing and builtin types ------------------===//

#include "ir/Context.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

TEST(TypeTest, FloatTypesAreUniqued) {
  IRContext Ctx;
  EXPECT_EQ(Ctx.getFloatType(32), Ctx.getFloatType(32));
  EXPECT_NE(Ctx.getFloatType(32), Ctx.getFloatType(64));
}

TEST(TypeTest, IntegerTypesAreUniqued) {
  IRContext Ctx;
  Type I32 = Ctx.getIntegerType(32);
  EXPECT_EQ(I32, Ctx.getIntegerType(32));
  EXPECT_NE(I32, Ctx.getIntegerType(64));
  EXPECT_NE(I32, Ctx.getIntegerType(32, Signedness::Signed));
}

TEST(TypeTest, TypeNameAndDialect) {
  IRContext Ctx;
  Type F32 = Ctx.getFloatType(32);
  EXPECT_EQ(F32.getName(), "builtin.f32");
  EXPECT_EQ(F32.getDialect()->getNamespace(), "builtin");
  EXPECT_EQ(F32.getContext(), &Ctx);
}

TEST(TypeTest, IntegerTypeParams) {
  IRContext Ctx;
  Type SI8 = Ctx.getIntegerType(8, Signedness::Signed);
  EXPECT_EQ(SI8.getParam("bitwidth").getInt().Value, 8);
  EXPECT_EQ(SI8.getParam("signedness").getEnum().Index,
            static_cast<unsigned>(Signedness::Signed));
}

TEST(TypeTest, FunctionType) {
  IRContext Ctx;
  Type FT = Ctx.getFunctionType({Ctx.getIntegerType(32)},
                                {Ctx.getFloatType(64)});
  EXPECT_EQ(FT, Ctx.getFunctionType({Ctx.getIntegerType(32)},
                                    {Ctx.getFloatType(64)}));
  EXPECT_EQ(FT.getParam("inputs").getArray().size(), 1u);
  EXPECT_EQ(FT.getParam("results").getArray()[0].getType(),
            Ctx.getFloatType(64));
}

TEST(TypeTest, CustomDialectType) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("cmath");
  TypeDefinition *Complex = D->addType("complex");
  Complex->setParamNames({"elementType"});
  Type C32 = Ctx.getType(Complex, {ParamValue(Ctx.getFloatType(32))});
  Type C64 = Ctx.getType(Complex, {ParamValue(Ctx.getFloatType(64))});
  EXPECT_NE(C32, C64);
  EXPECT_EQ(C32, Ctx.getType(Complex, {ParamValue(Ctx.getFloatType(32))}));
  EXPECT_EQ(C32.getParam("elementType").getType(), Ctx.getFloatType(32));
  EXPECT_EQ(C32.getName(), "cmath.complex");
}

TEST(TypeTest, CheckedConstructionRunsVerifier) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("t");
  TypeDefinition *Def = D->addType("positive");
  Def->setParamNames({"v"});
  Def->setVerifier([](const std::vector<ParamValue> &Params,
                      DiagnosticEngine &Diags, SMLoc Loc) -> LogicalResult {
    if (Params.size() == 1 && Params[0].isInt() &&
        Params[0].getInt().Value > 0)
      return success();
    Diags.emitError(Loc, "expected a positive integer parameter");
    return failure();
  });

  DiagnosticEngine Diags;
  Type Good = Ctx.getTypeChecked(Def, {ParamValue(IntVal{32, {}, 5})}, Diags);
  EXPECT_TRUE(static_cast<bool>(Good));
  EXPECT_FALSE(Diags.hadError());

  Type Bad = Ctx.getTypeChecked(Def, {ParamValue(IntVal{32, {}, -1})}, Diags);
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_TRUE(Diags.hadError());
}

TEST(TypeTest, CheckedConstructionSkipsVerifierWhenCached) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("t");
  TypeDefinition *Def = D->addType("counted");
  int Calls = 0;
  Def->setVerifier([&Calls](const std::vector<ParamValue> &,
                            DiagnosticEngine &, SMLoc) -> LogicalResult {
    ++Calls;
    return success();
  });
  DiagnosticEngine Diags;
  Type A = Ctx.getTypeChecked(Def, {}, Diags);
  Type B = Ctx.getTypeChecked(Def, {}, Diags);
  EXPECT_EQ(A, B);
  EXPECT_EQ(Calls, 1);
}

TEST(TypeTest, ParamValueEquality) {
  IRContext Ctx;
  ParamValue A(IntVal{32, Signedness::Signless, 7});
  ParamValue B(IntVal{32, Signedness::Signless, 7});
  ParamValue C(IntVal{64, Signedness::Signless, 7});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A.hash(), B.hash());

  ParamValue S1(std::string("hello"));
  ParamValue S2(std::string("hello"));
  EXPECT_EQ(S1, S2);
  EXPECT_NE(S1, A);
}

TEST(TypeTest, ArrayParamValues) {
  IRContext Ctx;
  std::vector<ParamValue> Elems;
  Elems.emplace_back(Ctx.getFloatType(32));
  Elems.emplace_back(IntVal{32, {}, 1});
  ParamValue Arr(std::move(Elems));
  EXPECT_TRUE(Arr.isArray());
  EXPECT_EQ(Arr.getArray().size(), 2u);
  EXPECT_TRUE(Arr.getArray()[0].isType());
}

TEST(TypeTest, UniquedTypeCount) {
  IRContext Ctx;
  size_t Before = Ctx.getNumUniquedTypes();
  Ctx.getIntegerType(17);
  Ctx.getIntegerType(17);
  Ctx.getIntegerType(18);
  EXPECT_EQ(Ctx.getNumUniquedTypes(), Before + 2);
}

} // namespace
