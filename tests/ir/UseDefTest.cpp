//===- UseDefTest.cpp - SSA use-def chain behaviour --------------------===//

#include "ir/Block.h"
#include "ir/Context.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class UseDefTest : public ::testing::Test {
protected:
  UseDefTest() {
    Dialect *D = Ctx.getOrCreateDialect("test");
    ProduceDef = D->addOp("produce");
    ConsumeDef = D->addOp("consume");
  }

  Operation *makeProduce() {
    OperationState State(Ctx, OperationName(ProduceDef));
    State.ResultTypes.push_back(Ctx.getFloatType(32));
    return Operation::create(State);
  }

  Operation *makeConsume(std::vector<Value> Operands) {
    OperationState State(Ctx, OperationName(ConsumeDef));
    State.Operands = std::move(Operands);
    return Operation::create(State);
  }

  IRContext Ctx;
  OpDefinition *ProduceDef = nullptr;
  OpDefinition *ConsumeDef = nullptr;
};

TEST_F(UseDefTest, UseCounts) {
  Operation *P = makeProduce();
  Value V = P->getResult(0);
  EXPECT_TRUE(V.use_empty());
  EXPECT_EQ(V.getNumUses(), 0u);

  Operation *C1 = makeConsume({V});
  EXPECT_TRUE(V.hasOneUse());
  EXPECT_EQ(V.getNumUses(), 1u);

  Operation *C2 = makeConsume({V, V});
  EXPECT_FALSE(V.hasOneUse());
  EXPECT_EQ(V.getNumUses(), 3u);

  C2->destroy();
  EXPECT_EQ(V.getNumUses(), 1u);
  C1->destroy();
  EXPECT_TRUE(V.use_empty());
  P->destroy();
}

TEST_F(UseDefTest, UseListIteration) {
  Operation *P = makeProduce();
  Value V = P->getResult(0);
  Operation *C1 = makeConsume({V});
  Operation *C2 = makeConsume({V});

  std::vector<Operation *> Users;
  for (OpOperand *Use = V.getFirstUse(); Use; Use = Use->getNextUse())
    Users.push_back(Use->getOwner());
  EXPECT_EQ(Users.size(), 2u);
  // Most recent use first (stack discipline).
  EXPECT_EQ(Users[0], C2);
  EXPECT_EQ(Users[1], C1);

  C1->destroy();
  C2->destroy();
  P->destroy();
}

TEST_F(UseDefTest, ReplaceAllUsesWith) {
  Operation *P1 = makeProduce();
  Operation *P2 = makeProduce();
  Operation *C1 = makeConsume({P1->getResult(0)});
  Operation *C2 = makeConsume({P1->getResult(0), P1->getResult(0)});

  P1->getResult(0).replaceAllUsesWith(P2->getResult(0));

  EXPECT_TRUE(P1->use_empty());
  EXPECT_EQ(P2->getResult(0).getNumUses(), 3u);
  EXPECT_EQ(C1->getOperand(0), P2->getResult(0));
  EXPECT_EQ(C2->getOperand(1), P2->getResult(0));

  C1->destroy();
  C2->destroy();
  P1->destroy();
  P2->destroy();
}

TEST_F(UseDefTest, SetOperandRelinks) {
  Operation *P1 = makeProduce();
  Operation *P2 = makeProduce();
  Operation *C = makeConsume({P1->getResult(0)});

  C->setOperand(0, P2->getResult(0));
  EXPECT_TRUE(P1->use_empty());
  EXPECT_TRUE(P2->getResult(0).hasOneUse());
  EXPECT_EQ(P2->getResult(0).getFirstUse()->getOwner(), C);

  // Setting to the same value is a no-op.
  C->setOperand(0, P2->getResult(0));
  EXPECT_EQ(P2->getResult(0).getNumUses(), 1u);

  C->destroy();
  P1->destroy();
  P2->destroy();
}

TEST_F(UseDefTest, BlockArgumentValues) {
  Block &B = *Block::create(Ctx);
  Value Arg = B.addArgument(Ctx.getFloatType(32));
  EXPECT_TRUE(Arg.isBlockArgument());
  EXPECT_FALSE(Arg.isOpResult());
  EXPECT_EQ(Arg.getOwnerBlock(), &B);
  EXPECT_EQ(Arg.getDefiningOp(), nullptr);
  EXPECT_EQ(Arg.getParentBlock(), &B);
  EXPECT_EQ(Arg.getIndex(), 0u);

  Operation *C = makeConsume({Arg});
  EXPECT_TRUE(Arg.hasOneUse());
  C->destroy();
  B.destroy();
}

TEST_F(UseDefTest, OperationReplaceAllUsesWith) {
  Operation *P1 = makeProduce();
  Operation *P2 = makeProduce();
  Operation *C = makeConsume({P1->getResult(0)});
  P1->replaceAllUsesWith(std::vector<Value>{P2->getResult(0)});
  EXPECT_EQ(C->getOperand(0), P2->getResult(0));
  C->destroy();
  P1->destroy();
  P2->destroy();
}

TEST_F(UseDefTest, NullValueHandling) {
  Value V;
  EXPECT_FALSE(static_cast<bool>(V));
  EXPECT_TRUE(V.use_empty());
  EXPECT_EQ(V.getDefiningOp(), nullptr);
}

} // namespace
