//===- ParallelVerifierTest.cpp - MT verification determinism ----------===//
///
/// The multithreaded verifier and function-pass driver must be
/// observationally identical to the sequential paths: same verdict, and a
/// byte-identical diagnostic stream. These tests run the same module with
/// --mt=1 and --mt=4 semantics and compare the rendered output, and
/// stress the sharded uniquer for pointer identity under concurrency.

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Pass.h"
#include "ir/Region.h"
#include "ir/Verifier.h"
#include "support/Threading.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace irdl;

namespace {

class ParallelVerifierTest : public ::testing::Test {
protected:
  ParallelVerifierTest() : Diags(&SrcMgr) {
    Dialect *D = Ctx.getOrCreateDialect("test");
    D->addOp("source");
    D->addOp("sink");
    D->addOp("wrap");
  }

  void TearDown() override { setGlobalThreadCount(0); }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  /// A module of \p NumFuncs single-block functions.
  std::string moduleText(unsigned NumFuncs) {
    std::string Text;
    for (unsigned F = 0; F != NumFuncs; ++F) {
      Text += "std.func @f" + std::to_string(F) + "() {\n";
      Text += "  %a = \"test.source\"() : () -> (f32)\n";
      Text += "  \"test.sink\"(%a) : (f32) -> ()\n";
      Text += "  \"std.return\"() : () -> ()\n";
      Text += "}\n";
    }
    return Text;
  }

  /// Verifies \p M under \p Threads and returns {succeeded, rendered}.
  std::pair<bool, std::string> verifyWith(OwningOpRef &M,
                                          unsigned Threads) {
    setGlobalThreadCount(Threads);
    DiagnosticEngine VDiags(&SrcMgr);
    bool Ok = succeeded(M->verify(VDiags));
    return {Ok, VDiags.renderAll()};
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

TEST_F(ParallelVerifierTest, ValidModuleIdenticalAcrossThreadCounts) {
  OwningOpRef M = parse(moduleText(16));
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  auto [Ok1, Out1] = verifyWith(M, 1);
  auto [Ok4, Out4] = verifyWith(M, 4);
  EXPECT_TRUE(Ok1) << Out1;
  EXPECT_TRUE(Ok4) << Out4;
  EXPECT_EQ(Out1, Out4);
}

TEST_F(ParallelVerifierTest, InvalidModuleIdenticalDiagnostics) {
  OwningOpRef M = parse(moduleText(16));
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  // Break dominance inside function #5: move its sink before its source.
  unsigned Index = 0;
  Operation *Broken = nullptr;
  for (Operation &Func : M->getRegion(0).front())
    if (Index++ == 5)
      Broken = &Func;
  ASSERT_NE(Broken, nullptr);
  Block &FuncBody = Broken->getRegion(0).front();
  Operation &Source = FuncBody.front();
  Operation &Sink = *std::next(Block::iterator(&Source));
  Sink.removeFromBlock();
  FuncBody.insert(Block::iterator(&Source), &Sink);

  auto [Ok1, Out1] = verifyWith(M, 1);
  auto [Ok4, Out4] = verifyWith(M, 4);
  EXPECT_FALSE(Ok1);
  EXPECT_FALSE(Ok4);
  EXPECT_NE(Out1.find("does not dominate"), std::string::npos);
  EXPECT_EQ(Out1, Out4);

  // Restore so teardown destroys a consistent module.
  Sink.removeFromBlock();
  FuncBody.insert(std::next(Block::iterator(&Source)), &Sink);
}

TEST_F(ParallelVerifierTest, ConcurrentUniquingPointerIdentity) {
  setGlobalThreadCount(8);
  // All threads request the same handful of types; every equal request
  // must come back as the same pointer (shard insert races converge).
  constexpr size_t N = 256;
  std::vector<Type> Same(N);
  std::vector<Type> Varied(N);
  parallelFor(0, N, [&](size_t I) {
    Same[I] = Ctx.getIntegerType(17);
    Varied[I] = Ctx.getIntegerType(1 + (unsigned)(I % 8));
  });
  for (size_t I = 1; I != N; ++I)
    EXPECT_EQ(Same[0], Same[I]) << "index " << I;
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Varied[I], Varied[I % 8]);

  // Attribute uniquing takes the same sharded path.
  std::vector<Attribute> Attrs(N);
  parallelFor(0, N, [&](size_t I) {
    Attrs[I] = Ctx.getStringAttr("shared-key");
  });
  for (size_t I = 1; I != N; ++I)
    EXPECT_EQ(Attrs[0], Attrs[I]);
}

TEST_F(ParallelVerifierTest, IsolatedFromAbove) {
  OwningOpRef M = parse(R"(
    %x = "test.source"() : () -> (f32)
    std.func @f(%p: f32) {
      "test.sink"(%p) : (f32) -> ()
      "std.return"() : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  Operation *Func = nullptr;
  M->walk([&](Operation *Op) {
    if (Op->getName().str() == "std.func")
      Func = Op;
  });
  ASSERT_NE(Func, nullptr);
  // The func's body only reaches its own block arguments.
  EXPECT_TRUE(Func->isIsolatedFromAbove());
  // The module's body reaches nothing outside the module.
  EXPECT_TRUE(M->isIsolatedFromAbove());

  // An op whose region uses a value defined outside it is not isolated.
  Operation &Source = M->getRegion(0).front().front();
  OperationState WrapState(Ctx, Ctx.resolveOpDef("test.wrap"));
  Region *R = WrapState.addRegion();
  Block *B = Block::create(Ctx);
  R->push_back(B);
  OperationState SinkState(Ctx, Ctx.resolveOpDef("test.sink"));
  SinkState.Operands = {Source.getResult(0)};
  B->push_back(Operation::create(SinkState));
  Operation *Wrap = Operation::create(WrapState);
  EXPECT_FALSE(Wrap->isIsolatedFromAbove());
  Wrap->erase();
}

TEST_F(ParallelVerifierTest, FunctionPassIdenticalDiagnostics) {
  OwningOpRef M = parse(moduleText(12));
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  auto RunPass = [&](unsigned Threads) {
    setGlobalThreadCount(Threads);
    // Emits one warning per function; the combined stream must come out
    // in source order regardless of execution order.
    LambdaFunctionPass Pass("annotate", [](Operation *Func,
                                           DiagnosticEngine &D) {
      unsigned Ops = 0;
      Func->walk([&](Operation *) { ++Ops; });
      D.emitWarning(Func->getLoc(),
                    "function has " + std::to_string(Ops) + " ops");
      return success();
    });
    DiagnosticEngine PDiags(&SrcMgr);
    bool Ok = succeeded(Pass.run(M.get(), PDiags));
    return std::make_pair(Ok, PDiags.renderAll());
  };

  auto [Ok1, Out1] = RunPass(1);
  auto [Ok4, Out4] = RunPass(4);
  EXPECT_TRUE(Ok1);
  EXPECT_TRUE(Ok4);
  EXPECT_EQ(Out1, Out4);
  // 12 functions -> 12 warnings, in order.
  EXPECT_NE(Out1.find("function has"), std::string::npos);
}

TEST_F(ParallelVerifierTest, FunctionPassFailFastDiagnostics) {
  OwningOpRef M = parse(moduleText(12));
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  auto RunPass = [&](unsigned Threads) {
    setGlobalThreadCount(Threads);
    // Fails on the 4th function (source order); diagnostics after the
    // failing function must not appear, matching a sequential run.
    LambdaFunctionPass Pass("fail-at-3", [](Operation *Func,
                                            DiagnosticEngine &D) {
      std::string Name;
      if (Attribute SymName = Func->getAttr("sym_name"))
        Name = SymName.getParams()[0].getString();
      D.emitWarning(Func->getLoc(), "visiting " + Name);
      if (Name.find("f3") != std::string::npos) {
        D.emitError(Func->getLoc(), "rejecting " + Name);
        return failure();
      }
      return success();
    });
    DiagnosticEngine PDiags(&SrcMgr);
    bool Ok = succeeded(Pass.run(M.get(), PDiags));
    return std::make_pair(Ok, PDiags.renderAll());
  };

  auto [Ok1, Out1] = RunPass(1);
  auto [Ok4, Out4] = RunPass(4);
  EXPECT_FALSE(Ok1);
  EXPECT_FALSE(Ok4);
  EXPECT_EQ(Out1, Out4);
  EXPECT_NE(Out1.find("rejecting"), std::string::npos);
  // Nothing from the functions after the failing one leaks through.
  EXPECT_EQ(Out1.find("f4"), std::string::npos);
}

} // namespace
