//===- ParserTest.cpp - Textual IR parsing -----------------------------===//

#include "ir/Context.h"
#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class ParserTest : public ::testing::Test {
protected:
  ParserTest() : Diags(&SrcMgr) {
    Dialect *D = Ctx.getOrCreateDialect("test");
    OpDefinition *Source = D->addOp("source");
    (void)Source;
    D->addOp("sink");
    D->addOp("pair");
    TypeDefinition *Complex =
        Ctx.getOrCreateDialect("cmath")->addType("complex");
    Complex->setParamNames({"elementType"});
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

TEST_F(ParserTest, ParseTypes) {
  EXPECT_EQ(parseTypeString(Ctx, "f32", Diags), Ctx.getFloatType(32));
  EXPECT_EQ(parseTypeString(Ctx, "i32", Diags), Ctx.getIntegerType(32));
  EXPECT_EQ(parseTypeString(Ctx, "si8", Diags),
            Ctx.getIntegerType(8, Signedness::Signed));
  EXPECT_EQ(parseTypeString(Ctx, "index", Diags), Ctx.getIndexType());
  EXPECT_EQ(parseTypeString(Ctx, "(i32) -> f32", Diags),
            Ctx.getFunctionType({Ctx.getIntegerType(32)},
                                {Ctx.getFloatType(32)}));
}

TEST_F(ParserTest, ParseDialectType) {
  Type T = parseTypeString(Ctx, "!cmath.complex<f32>", Diags);
  ASSERT_TRUE(static_cast<bool>(T));
  EXPECT_EQ(T.getName(), "cmath.complex");
  EXPECT_EQ(T.getParam("elementType").getType(), Ctx.getFloatType(32));
  // Nested bang form is accepted too.
  EXPECT_EQ(parseTypeString(Ctx, "!cmath.complex<!f32>", Diags), T);
}

TEST_F(ParserTest, ParseTypeErrors) {
  EXPECT_FALSE(static_cast<bool>(parseTypeString(Ctx, "!no.such", Diags)));
  EXPECT_TRUE(Diags.hadError());
  Diags.clear();
  EXPECT_FALSE(static_cast<bool>(parseTypeString(Ctx, "f32 f32", Diags)));
  EXPECT_TRUE(Diags.hadError());
}

TEST_F(ParserTest, ParseAttributes) {
  EXPECT_EQ(parseAttrString(Ctx, "3 : i32", Diags),
            Ctx.getIntegerAttr(3, 32));
  EXPECT_EQ(parseAttrString(Ctx, "-4 : si8", Diags),
            Ctx.getIntegerAttr(-4, 8, Signedness::Signed));
  EXPECT_EQ(parseAttrString(Ctx, "7", Diags), Ctx.getIntegerAttr(7, 64));
  EXPECT_EQ(parseAttrString(Ctx, "2.5 : f32", Diags),
            Ctx.getFloatAttr(2.5, 32));
  EXPECT_EQ(parseAttrString(Ctx, "\"s\"", Diags), Ctx.getStringAttr("s"));
  EXPECT_EQ(parseAttrString(Ctx, "unit", Diags), Ctx.getUnitAttr());
  EXPECT_EQ(parseAttrString(Ctx, "true", Diags), Ctx.getIntegerAttr(1, 1));
  EXPECT_EQ(parseAttrString(Ctx, "f32", Diags),
            Ctx.getTypeAttr(Ctx.getFloatType(32)));
  EXPECT_EQ(parseAttrString(Ctx, "[1 : i32, 2 : i32]", Diags),
            Ctx.getArrayAttr({Ctx.getIntegerAttr(1, 32),
                              Ctx.getIntegerAttr(2, 32)}));
}

TEST_F(ParserTest, ParseCanonicalAttrForm) {
  EXPECT_EQ(parseAttrString(Ctx, "#builtin.int<3 : i32>", Diags),
            Ctx.getIntegerAttr(3, 32));
  EXPECT_EQ(parseAttrString(Ctx, "#builtin.string<\"x\">", Diags),
            Ctx.getStringAttr("x"));
}

TEST_F(ParserTest, ParseSimpleModule) {
  OwningOpRef Module = parse(R"(
    %0 = "test.source"() : () -> (f32)
    "test.sink"(%0) : (f32) -> ()
  )");
  ASSERT_TRUE(static_cast<bool>(Module)) << Diags.renderAll();
  Block &Body = Module->getRegion(0).front();
  EXPECT_EQ(Body.getNumOps(), 2u);
  EXPECT_EQ(Body.front().getName().str(), "test.source");
  EXPECT_EQ(Body.back().getOperand(0), Body.front().getResult(0));
}

TEST_F(ParserTest, UnknownOpRejectedByDefault) {
  OwningOpRef Module = parse(R"("nope.op"() : () -> ())");
  EXPECT_FALSE(static_cast<bool>(Module));
  EXPECT_TRUE(Diags.hadError());
}

TEST_F(ParserTest, UnknownOpAllowedWhenOptedIn) {
  Ctx.setAllowUnregisteredOps(true);
  OwningOpRef Module = parse(R"("nope.op"() : () -> ())");
  ASSERT_TRUE(static_cast<bool>(Module)) << Diags.renderAll();
  EXPECT_FALSE(Module->getRegion(0).front().front().isRegistered());
}

TEST_F(ParserTest, MultiResultBindingAndUse) {
  OwningOpRef Module = parse(R"(
    %p:2 = "test.pair"() : () -> (f32, i1)
    "test.sink"(%p#1) : (i1) -> ()
  )");
  ASSERT_TRUE(static_cast<bool>(Module)) << Diags.renderAll();
  Block &Body = Module->getRegion(0).front();
  EXPECT_EQ(Body.back().getOperand(0), Body.front().getResult(1));
}

TEST_F(ParserTest, ResultCountMismatch) {
  OwningOpRef Module = parse(R"(
    %p:3 = "test.pair"() : () -> (f32, i1)
  )");
  EXPECT_FALSE(static_cast<bool>(Module));
  EXPECT_TRUE(Diags.hadError());
}

TEST_F(ParserTest, UseOfUndefinedValue) {
  OwningOpRef Module = parse(R"(
    "test.sink"(%ghost) : (f32) -> ()
  )");
  EXPECT_FALSE(static_cast<bool>(Module));
  EXPECT_TRUE(Diags.hadError());
}

TEST_F(ParserTest, RedefinitionRejected) {
  OwningOpRef Module = parse(R"(
    %0 = "test.source"() : () -> (f32)
    %0 = "test.source"() : () -> (f32)
  )");
  EXPECT_FALSE(static_cast<bool>(Module));
}

TEST_F(ParserTest, OperandTypeMismatch) {
  OwningOpRef Module = parse(R"(
    %0 = "test.source"() : () -> (f32)
    "test.sink"(%0) : (i32) -> ()
  )");
  EXPECT_FALSE(static_cast<bool>(Module));
  EXPECT_TRUE(Diags.hadError());
}

TEST_F(ParserTest, BlocksAndSuccessors) {
  OwningOpRef Module = parse(R"(
    std.func @f(%c: i1) {
      "std.cond_br"(%c)[^then, ^else] : (i1) -> ()
    ^then:
      "std.return"() : () -> ()
    ^else:
      "std.return"() : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Module)) << Diags.renderAll();
  Operation &Func = Module->getRegion(0).front().front();
  Region &Body = Func.getRegion(0);
  EXPECT_EQ(Body.getNumBlocks(), 3u);
  Operation *CondBr = Body.front().getTerminator();
  ASSERT_NE(CondBr, nullptr);
  EXPECT_EQ(CondBr->getNumSuccessors(), 2u);
  EXPECT_EQ(CondBr->getSuccessor(0), Body.front().getNextNode());
  DiagnosticEngine VDiags;
  EXPECT_TRUE(succeeded(Module->verify(VDiags))) << VDiags.renderAll();
}

TEST_F(ParserTest, ForwardValueReferenceAcrossBlocks) {
  OwningOpRef Module = parse(R"(
    std.func @f() {
      "std.br"()[^second] : () -> ()
    ^first:
      "test.sink"(%later) : (f32) -> ()
      "std.return"() : () -> ()
    ^second:
      %later = "test.source"() : () -> (f32)
      "std.br"()[^first] : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Module)) << Diags.renderAll();
  DiagnosticEngine VDiags;
  EXPECT_TRUE(succeeded(Module->verify(VDiags))) << VDiags.renderAll();
}

TEST_F(ParserTest, UndefinedBlockIsAnError) {
  OwningOpRef Module = parse(R"(
    std.func @f() {
      "std.br"()[^nowhere] : () -> ()
    }
  )");
  EXPECT_FALSE(static_cast<bool>(Module));
  EXPECT_TRUE(Diags.hadError());
}

TEST_F(ParserTest, ExplicitModuleUnwrapped) {
  OwningOpRef Module = parse(R"(
    module {
      %0 = "test.source"() : () -> (f32)
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Module)) << Diags.renderAll();
  EXPECT_EQ(Module->getName().str(), "builtin.module");
  EXPECT_EQ(Module->getRegion(0).front().getNumOps(), 1u);
}

TEST_F(ParserTest, BlockArgumentsParsed) {
  OwningOpRef Module = parse(R"(
    std.func @f(%x: i1) {
      "std.br"()[^loop] : () -> ()
    ^loop(%v: f32):
      "test.sink"(%v) : (f32) -> ()
      "std.br"()[^loop] : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Module)) << Diags.renderAll();
  Region &Body = Module->getRegion(0).front().front().getRegion(0);
  Block *Loop = Body.front().getNextNode();
  ASSERT_NE(Loop, nullptr);
  EXPECT_EQ(Loop->getNumArguments(), 1u);
  EXPECT_EQ(Loop->getArgument(0).getType(), Ctx.getFloatType(32));
}

} // namespace
