//===- DominanceEdgeTest.cpp - CFG edge cases in the verifier -------------===//

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Region.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class DominanceEdgeTest : public ::testing::Test {
protected:
  DominanceEdgeTest() : Diags(&SrcMgr) {
    Dialect *D = Ctx.getOrCreateDialect("test");
    D->addOp("source");
    D->addOp("sink");
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  DiagnosticEngine VDiags;
};

TEST_F(DominanceEdgeTest, LoopBackEdge) {
  // A value defined in the loop header is usable in the loop body that
  // branches back to it.
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      "std.br"()[^header] : () -> ()
    ^header:
      %x = "test.source"() : () -> (f32)
      "std.cond_br"(%c)[^body, ^exit] : (i1) -> ()
    ^body:
      "test.sink"(%x) : (f32) -> ()
      "std.br"()[^header] : () -> ()
    ^exit:
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(M->verify(VDiags))) << VDiags.renderAll();
}

TEST_F(DominanceEdgeTest, ValueFromLoopBodyNotUsableInHeader) {
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      "std.br"()[^header] : () -> ()
    ^header:
      "test.sink"(%y) : (f32) -> ()
      "std.cond_br"(%c)[^body, ^exit] : (i1) -> ()
    ^body:
      %y = "test.source"() : () -> (f32)
      "std.br"()[^header] : () -> ()
    ^exit:
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(failed(M->verify(VDiags)));
  EXPECT_NE(VDiags.renderAll().find("does not dominate"),
            std::string::npos);
}

TEST_F(DominanceEdgeTest, UnreachableBlockDoesNotDominate) {
  // A definition in an unreachable block cannot feed a reachable one.
  OwningOpRef M = parse(R"(
    std.func @f() {
      "std.br"()[^reach] : () -> ()
    ^reach:
      "test.sink"(%dead) : (f32) -> ()
      std.return
    ^unreachable:
      %dead = "test.source"() : () -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(failed(M->verify(VDiags)));
}

TEST_F(DominanceEdgeTest, UseInsideUnreachableBlockIsTolerantButChecked) {
  // Uses *within* an unreachable block of values defined in the same
  // block still obey intra-block ordering.
  OwningOpRef M = parse(R"(
    std.func @f() {
      std.return
    ^dead:
      %x = "test.source"() : () -> (f32)
      "test.sink"(%x) : (f32) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(M->verify(VDiags))) << VDiags.renderAll();
}

TEST_F(DominanceEdgeTest, DiamondJoinNeedsCommonDominator) {
  // The classic: defs in each diamond arm do not dominate the join.
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      %ok = "test.source"() : () -> (f32)
      "std.cond_br"(%c)[^l, ^r] : (i1) -> ()
    ^l:
      %a = "test.source"() : () -> (f32)
      "std.br"()[^join] : () -> ()
    ^r:
      "std.br"()[^join] : () -> ()
    ^join:
      "test.sink"(%ok) : (f32) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(M->verify(VDiags))) << VDiags.renderAll();

  OwningOpRef Bad = parse(R"(
    std.func @f(%c: i1) {
      "std.cond_br"(%c)[^l, ^r] : (i1) -> ()
    ^l:
      %a = "test.source"() : () -> (f32)
      "std.br"()[^join] : () -> ()
    ^r:
      "std.br"()[^join] : () -> ()
    ^join:
      "test.sink"(%a) : (f32) -> ()
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  DiagnosticEngine V2;
  EXPECT_TRUE(failed(Bad->verify(V2)));
}

TEST_F(DominanceEdgeTest, NestedRegionSeesLoopHeaderValues) {
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      %x = "test.source"() : () -> (f32)
      "std.cond_br"(%c)[^a, ^b] : (i1) -> ()
    ^a:
      module {
        "test.sink"(%x) : (f32) -> ()
      }
      std.return
    ^b:
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(M->verify(VDiags))) << VDiags.renderAll();
}

TEST_F(DominanceEdgeTest, BlockArgumentsDominateWholeBlock) {
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      "std.br"()[^loop] : () -> ()
    ^loop(%carried: f32):
      "test.sink"(%carried) : (f32) -> ()
      "std.br"()[^loop] : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(M->verify(VDiags))) << VDiags.renderAll();
}

} // namespace
