//===- ContextTest.cpp - Dialect registry and name resolution ----------===//

#include "ir/Context.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

TEST(ContextTest, BuiltinDialectsPreRegistered) {
  IRContext Ctx;
  EXPECT_NE(Ctx.lookupDialect("builtin"), nullptr);
  EXPECT_NE(Ctx.lookupDialect("std"), nullptr);
  EXPECT_EQ(Ctx.lookupDialect("nope"), nullptr);
}

TEST(ContextTest, GetOrCreateDialect) {
  IRContext Ctx;
  Dialect *A = Ctx.getOrCreateDialect("cmath");
  Dialect *B = Ctx.getOrCreateDialect("cmath");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A->getNamespace(), "cmath");
}

TEST(ContextTest, DuplicateDefinitionsRejected) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("x");
  EXPECT_NE(D->addType("t"), nullptr);
  EXPECT_EQ(D->addType("t"), nullptr);
  EXPECT_NE(D->addOp("o"), nullptr);
  EXPECT_EQ(D->addOp("o"), nullptr);
  EXPECT_NE(D->addAttr("a"), nullptr);
  EXPECT_EQ(D->addAttr("a"), nullptr);
  EXPECT_NE(D->addEnum("e", {"A"}), nullptr);
  EXPECT_EQ(D->addEnum("e", {"B"}), nullptr);
}

TEST(ContextTest, QualifiedResolution) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("cmath");
  TypeDefinition *Complex = D->addType("complex");
  EXPECT_EQ(Ctx.resolveTypeDef("cmath.complex"), Complex);
  EXPECT_EQ(Ctx.resolveTypeDef("cmath.unknown"), nullptr);
  EXPECT_EQ(Ctx.resolveTypeDef("complex"), nullptr);
}

TEST(ContextTest, BareNameSearchesCurrentThenBuiltinThenStd) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("cmath");
  TypeDefinition *Complex = D->addType("complex");
  // With Current: found.
  EXPECT_EQ(Ctx.resolveTypeDef("complex", D), Complex);
  // builtin elision: f32 etc. resolve without prefix.
  EXPECT_EQ(Ctx.resolveTypeDef("f32"), Ctx.getFloatTypeDef(32));
  EXPECT_EQ(Ctx.resolveTypeDef("f32", D), Ctx.getFloatTypeDef(32));
  // std elision for ops.
  EXPECT_NE(Ctx.resolveOpDef("return"), nullptr);
  EXPECT_EQ(Ctx.resolveOpDef("return")->getFullName(), "std.return");
}

TEST(ContextTest, ShadowingPrefersCurrentDialect) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("mine");
  TypeDefinition *MyF32 = D->addType("f32");
  EXPECT_EQ(Ctx.resolveTypeDef("f32", D), MyF32);
  EXPECT_EQ(Ctx.resolveTypeDef("f32"), Ctx.getFloatTypeDef(32));
}

TEST(ContextTest, EnumResolution) {
  IRContext Ctx;
  EnumDef *Sign = Ctx.getSignednessEnum();
  EXPECT_EQ(Ctx.resolveEnumDef("builtin.signedness"), Sign);
  EXPECT_EQ(Ctx.resolveEnumDef("signedness"), Sign);
  EXPECT_EQ(Sign->lookupCase("Signed"), 1u);
  EXPECT_EQ(Sign->lookupCase("Nope"), std::nullopt);
}

TEST(ContextTest, GetDialectsIsSorted) {
  IRContext Ctx;
  Ctx.getOrCreateDialect("zeta");
  Ctx.getOrCreateDialect("alpha");
  std::vector<Dialect *> All = Ctx.getDialects();
  ASSERT_GE(All.size(), 4u); // alpha, builtin, std, zeta
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_LT(All[I - 1]->getNamespace(), All[I]->getNamespace());
}

TEST(ContextTest, DefinitionListing) {
  IRContext Ctx;
  Dialect *Builtin = Ctx.lookupDialect("builtin");
  auto Types = Builtin->getTypeDefs();
  // f16, f32, f64, function, index, integer.
  EXPECT_EQ(Types.size(), 6u);
  auto Attrs = Builtin->getAttrDefs();
  // array, enum, float, int, string, type, unit.
  EXPECT_EQ(Attrs.size(), 7u);
}

TEST(ContextTest, UnregisteredOpPolicy) {
  IRContext Ctx;
  EXPECT_FALSE(Ctx.allowsUnregisteredOps());
  Ctx.setAllowUnregisteredOps(true);
  EXPECT_TRUE(Ctx.allowsUnregisteredOps());
}

} // namespace
