//===- CloningTest.cpp - Deep cloning ----------------------------------===//

#include "ir/Block.h"
#include "ir/Cloning.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class CloningTest : public ::testing::Test {
protected:
  CloningTest() : Diags(&SrcMgr) {
    Dialect *D = Ctx.getOrCreateDialect("test");
    D->addOp("source");
    D->addOp("sink");
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

TEST_F(CloningTest, CloneSimpleOp) {
  OwningOpRef M = parse(R"(
    %0 = "test.source"() {tag = 7 : i32} : () -> (f32)
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  Operation &Src = M->getRegion(0).front().front();

  Operation *Clone = cloneOp(&Src);
  EXPECT_NE(Clone, &Src);
  EXPECT_EQ(Clone->getName().str(), "test.source");
  EXPECT_EQ(Clone->getNumResults(), 1u);
  EXPECT_EQ(Clone->getResult(0).getType(), Ctx.getFloatType(32));
  EXPECT_EQ(Clone->getAttr("tag"), Ctx.getIntegerAttr(7, 32));
  EXPECT_EQ(Clone->getBlock(), nullptr); // detached
  Clone->destroy();
}

TEST_F(CloningTest, OperandRemapping) {
  OwningOpRef M = parse(R"(
    %a = "test.source"() : () -> (f32)
    %b = "test.source"() : () -> (f32)
    "test.sink"(%a) : (f32) -> ()
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  Block &Body = M->getRegion(0).front();
  auto It = Body.begin();
  Operation &A = *It++;
  Operation &B = *It++;
  Operation &Sink = *It;

  // Unmapped: the clone references the original %a.
  Operation *Clone1 = cloneOp(&Sink);
  EXPECT_EQ(Clone1->getOperand(0), A.getResult(0));
  Clone1->destroy();

  // Mapped %a -> %b.
  IRMapping Mapper;
  Mapper.map(A.getResult(0), B.getResult(0));
  Operation *Clone2 = cloneOp(&Sink, Mapper);
  EXPECT_EQ(Clone2->getOperand(0), B.getResult(0));
  Clone2->destroy();
}

TEST_F(CloningTest, CloneFunctionWithRegion) {
  OwningOpRef M = parse(R"(
    std.func @f(%x: f32) -> f32 {
      %y = std.mulf %x, %x : f32
      std.return %y : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  Operation &Func = M->getRegion(0).front().front();

  IRMapping Mapper;
  Operation *Clone = cloneOp(&Func, Mapper);
  // The clone is self-contained: its body uses its own block argument.
  ASSERT_EQ(Clone->getNumRegions(), 1u);
  Block &NewEntry = Clone->getRegion(0).front();
  ASSERT_EQ(NewEntry.getNumArguments(), 1u);
  Operation &NewMul = NewEntry.front();
  EXPECT_EQ(NewMul.getOperand(0), NewEntry.getArgument(0));
  EXPECT_NE(NewMul.getOperand(0),
            Func.getRegion(0).front().getArgument(0));

  // Give it a distinct name and add it to the module: still verifies.
  Clone->setAttr("sym_name", Ctx.getStringAttr("f_clone"));
  M->getRegion(0).front().push_back(Clone);
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();
}

TEST_F(CloningTest, CloneCFGRemapsSuccessors) {
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      "std.cond_br"(%c)[^a, ^b] : (i1) -> ()
    ^a:
      std.return
    ^b:
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  Operation &Func = M->getRegion(0).front().front();
  IRMapping Mapper;
  Operation *Clone = cloneOp(&Func, Mapper);
  Clone->setAttr("sym_name", Ctx.getStringAttr("f2"));
  M->getRegion(0).front().push_back(Clone);

  // The cloned cond_br must branch to the cloned blocks.
  Region &NewBody = Clone->getRegion(0);
  ASSERT_EQ(NewBody.getNumBlocks(), 3u);
  Operation *NewCondBr = NewBody.front().getTerminator();
  ASSERT_NE(NewCondBr, nullptr);
  EXPECT_EQ(NewCondBr->getSuccessor(0), NewBody.front().getNextNode());
  EXPECT_NE(NewCondBr->getSuccessor(0),
            Func.getRegion(0).front().getNextNode());

  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();
}

TEST_F(CloningTest, ClonePreservesTextualForm) {
  OwningOpRef M = parse(R"(
    std.func @f(%x: f32) -> f32 {
      %y = std.addf %x, %x : f32
      std.return %y : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  Operation &Func = M->getRegion(0).front().front();
  Operation *Clone = cloneOp(&Func);
  std::string A = printOpToString(&Func);
  std::string B = printOpToString(Clone);
  EXPECT_EQ(A, B);
  // Clone owns nested state; deleting it leaves the original intact.
  Clone->destroy();
  EXPECT_EQ(printOpToString(&Func), A);
}

} // namespace
