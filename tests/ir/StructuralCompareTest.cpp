//===- StructuralCompareTest.cpp - isStructurallyEquivalent -------------===//
///
/// The shared structural-equality helper used by the print→reparse and
/// bytecode roundtrip suites: value wiring is compared positionally, types
/// and attributes structurally (so modules from different contexts
/// compare equal), and mismatches report a path through the IR.

#include "ir/StructuralCompare.h"

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class StructuralCompareTest : public ::testing::Test {
protected:
  StructuralCompareTest() : Diags(&SrcMgr) {}

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

constexpr const char *FuncText = R"(
  std.func @f(%a: f32, %b: f32) -> f32 {
    %0 = std.mulf %a, %b : f32
    %1 = std.addf %0, %a : f32
    std.return %1 : f32
  }
)";

TEST_F(StructuralCompareTest, IdenticalModulesCompareEqual) {
  OwningOpRef A = parse(FuncText);
  OwningOpRef B = parse(FuncText);
  ASSERT_TRUE(A && B) << Diags.renderAll();
  std::string WhyNot;
  EXPECT_TRUE(isStructurallyEquivalent(A.get(), B.get(), &WhyNot))
      << WhyNot;
}

TEST_F(StructuralCompareTest, SameOperationComparesEqual) {
  OwningOpRef A = parse(FuncText);
  ASSERT_TRUE(A);
  EXPECT_TRUE(isStructurallyEquivalent(A.get(), A.get()));
}

TEST_F(StructuralCompareTest, CrossContextModulesCompareEqual) {
  OwningOpRef A = parse(FuncText);
  IRContext Ctx2;
  SourceMgr SM2;
  DiagnosticEngine Diags2(&SM2);
  OwningOpRef B = parseSourceString(Ctx2, FuncText, SM2, Diags2);
  ASSERT_TRUE(A && B);
  std::string WhyNot;
  EXPECT_TRUE(isStructurallyEquivalent(A.get(), B.get(), &WhyNot))
      << WhyNot;
}

TEST_F(StructuralCompareTest, DifferentAttributeValue) {
  OwningOpRef A = parse("%c = std.constant 1.0 : f32");
  OwningOpRef B = parse("%c = std.constant 2.0 : f32");
  ASSERT_TRUE(A && B);
  std::string WhyNot;
  EXPECT_FALSE(isStructurallyEquivalent(A.get(), B.get(), &WhyNot));
  EXPECT_NE(WhyNot.find("attribute"), std::string::npos) << WhyNot;
}

TEST_F(StructuralCompareTest, DifferentResultType) {
  OwningOpRef A = parse("%c = std.constant 1 : i32");
  OwningOpRef B = parse("%c = std.constant 1 : i64");
  ASSERT_TRUE(A && B);
  EXPECT_FALSE(isStructurallyEquivalent(A.get(), B.get()));
}

TEST_F(StructuralCompareTest, DifferentOperandWiring) {
  OwningOpRef A = parse(R"(
    std.func @f(%a: f32, %b: f32) -> f32 {
      %0 = std.mulf %a, %b : f32
      std.return %0 : f32
    }
  )");
  OwningOpRef B = parse(R"(
    std.func @f(%a: f32, %b: f32) -> f32 {
      %0 = std.mulf %b, %a : f32
      std.return %0 : f32
    }
  )");
  ASSERT_TRUE(A && B) << Diags.renderAll();
  std::string WhyNot;
  EXPECT_FALSE(isStructurallyEquivalent(A.get(), B.get(), &WhyNot));
  EXPECT_NE(WhyNot.find("operand"), std::string::npos) << WhyNot;
}

TEST_F(StructuralCompareTest, DifferentOpCount) {
  OwningOpRef A = parse("%c = std.constant 1.0 : f32");
  OwningOpRef B = parse(R"(
    %c = std.constant 1.0 : f32
    %d = std.constant 1.0 : f32
  )");
  ASSERT_TRUE(A && B);
  std::string WhyNot;
  EXPECT_FALSE(isStructurallyEquivalent(A.get(), B.get(), &WhyNot));
  EXPECT_NE(WhyNot.find("op count"), std::string::npos) << WhyNot;
}

TEST_F(StructuralCompareTest, DifferentSuccessorWiring) {
  constexpr const char *Cfg = R"(
    std.func @f(%c: i1) {
      "std.cond_br"(%c)[^then, ^else] : (i1) -> ()
    ^then:
      "std.return"() : () -> ()
    ^else:
      "std.return"() : () -> ()
    }
  )";
  constexpr const char *CfgSwapped = R"(
    std.func @f(%c: i1) {
      "std.cond_br"(%c)[^else, ^then] : (i1) -> ()
    ^then:
      "std.return"() : () -> ()
    ^else:
      "std.return"() : () -> ()
    }
  )";
  OwningOpRef A = parse(Cfg);
  OwningOpRef B = parse(Cfg);
  OwningOpRef C = parse(CfgSwapped);
  ASSERT_TRUE(A && B && C) << Diags.renderAll();
  std::string WhyNot;
  EXPECT_TRUE(isStructurallyEquivalent(A.get(), B.get(), &WhyNot))
      << WhyNot;
  EXPECT_FALSE(isStructurallyEquivalent(A.get(), C.get(), &WhyNot));
  EXPECT_NE(WhyNot.find("successor"), std::string::npos) << WhyNot;
}

TEST_F(StructuralCompareTest, WhyNotReportsPath) {
  OwningOpRef A = parse(FuncText);
  OwningOpRef B = parse(R"(
    std.func @f(%a: f32, %b: f32) -> f32 {
      %0 = std.mulf %a, %b : f32
      %1 = std.mulf %0, %a : f32
      std.return %1 : f32
    }
  )");
  ASSERT_TRUE(A && B) << Diags.renderAll();
  std::string WhyNot;
  EXPECT_FALSE(isStructurallyEquivalent(A.get(), B.get(), &WhyNot));
  // The mismatching op is nested: root / region 0 / block 0 / op 0
  // (std.func) / region 0 / block 0 / op 1.
  EXPECT_NE(WhyNot.find("region 0"), std::string::npos) << WhyNot;
  EXPECT_NE(WhyNot.find("op 1"), std::string::npos) << WhyNot;
}

TEST_F(StructuralCompareTest, ParamValues) {
  EXPECT_TRUE(isStructurallyEquivalent(
      ParamValue(IntVal{32, Signedness::Signless, 7}),
      ParamValue(IntVal{32, Signedness::Signless, 7})));
  EXPECT_FALSE(isStructurallyEquivalent(
      ParamValue(IntVal{32, Signedness::Signless, 7}),
      ParamValue(IntVal{32, Signedness::Signless, 8})));
  EXPECT_FALSE(isStructurallyEquivalent(
      ParamValue(IntVal{32, Signedness::Signless, 7}),
      ParamValue(std::string("7"))));
  EXPECT_TRUE(isStructurallyEquivalent(ParamValue(std::string("x")),
                                       ParamValue(std::string("x"))));

  IRContext CtxA, CtxB;
  EXPECT_TRUE(isStructurallyEquivalent(CtxA.getFloatType(32),
                                       CtxB.getFloatType(32)));
  EXPECT_FALSE(isStructurallyEquivalent(CtxA.getFloatType(32),
                                        CtxB.getFloatType(64)));
}

TEST_F(StructuralCompareTest, NullOperands) {
  OwningOpRef A = parse(FuncText);
  ASSERT_TRUE(A);
  std::string WhyNot;
  EXPECT_FALSE(isStructurallyEquivalent(A.get(), nullptr, &WhyNot));
  EXPECT_FALSE(WhyNot.empty());
  EXPECT_TRUE(isStructurallyEquivalent(nullptr, nullptr));
}

} // namespace
