//===- RandomRoundTripTest.cpp - Randomized print/parse property ----------===//
///
/// Builds pseudo-random (deterministically seeded) modules — random op
/// shapes, random operand wiring respecting dominance, random attributes
/// — and checks that print -> parse -> print is a fixed point and that
/// the reparsed IR verifies. One test instance per seed.

#include "ir/Block.h"
#include "ir/Builder.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

/// A minimal deterministic PRNG (LCG) — std::rand would be platform-
/// dependent and Date/time seeding would break reproducibility.
class Lcg {
public:
  explicit Lcg(uint64_t Seed) : State(Seed * 6364136223846793005ULL + 1) {}
  uint32_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(State >> 33);
  }
  uint32_t below(uint32_t N) { return N ? next() % N : 0; }

private:
  uint64_t State;
};

class RandomRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomRoundTripTest, PrintParsePrintFixedPoint) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("rnd");
  // A family of ops with every arity combination 0..2 x 0..2.
  std::vector<OpDefinition *> Defs;
  for (unsigned NumOperands = 0; NumOperands <= 2; ++NumOperands)
    for (unsigned NumResults = 0; NumResults <= 2; ++NumResults)
      Defs.push_back(D->addOp("op" + std::to_string(NumOperands) +
                              std::to_string(NumResults)));

  Lcg Rng(static_cast<uint64_t>(GetParam()) + 17);

  std::vector<Type> TypePool = {
      Ctx.getFloatType(32), Ctx.getFloatType(64), Ctx.getIntegerType(1),
      Ctx.getIntegerType(32), Ctx.getIntegerType(8, Signedness::Signed),
      Ctx.getIndexType(),
      Ctx.getFunctionType({Ctx.getIntegerType(32)},
                          {Ctx.getFloatType(32)})};

  auto RandomAttr = [&](Lcg &R) -> Attribute {
    switch (R.below(5)) {
    case 0:
      return Ctx.getIntegerAttr(static_cast<int64_t>(R.below(1000)) - 500,
                                32);
    case 1:
      return Ctx.getFloatAttr(R.below(100) / 4.0, 64);
    case 2:
      return Ctx.getStringAttr("s" + std::to_string(R.below(10)));
    case 3:
      return Ctx.getUnitAttr();
    default:
      return Ctx.getTypeAttr(TypePool[R.below(TypePool.size())]);
    }
  };

  // Build a module with a chain of random ops; operands come from
  // earlier results of matching type (or fresh source ops).
  OperationState ModState(Ctx, Ctx.resolveOpDef("builtin.module"));
  Region *ModRegion = ModState.addRegion();
  Block *Body = Block::create(Ctx);
  ModRegion->push_back(Body);

  OpBuilder Builder(&Ctx);
  Builder.setInsertionPointToEnd(Body);
  std::vector<Value> Available; // values usable as operands

  // Seed with a few producers.
  OpDefinition *Producer = Defs[1]; // op01: 0 operands, 1 result
  for (int I = 0; I < 4; ++I) {
    OperationState S(Ctx, Producer);
    S.ResultTypes = {TypePool[Rng.below(TypePool.size())]};
    Available.push_back(Builder.create(S)->getResult(0));
  }

  for (int I = 0; I < 40; ++I) {
    OpDefinition *Def = Defs[Rng.below(Defs.size())];
    // Decode the op's arity from its name ("opNM").
    unsigned NumOperands = Def->getShortName()[2] - '0';
    unsigned NumResults = Def->getShortName()[3] - '0';

    OperationState S(Ctx, Def);
    for (unsigned J = 0; J < NumOperands; ++J)
      S.Operands.push_back(Available[Rng.below(Available.size())]);
    for (unsigned J = 0; J < NumResults; ++J)
      S.ResultTypes.push_back(TypePool[Rng.below(TypePool.size())]);
    unsigned NumAttrs = Rng.below(3);
    for (unsigned J = 0; J < NumAttrs; ++J)
      S.addAttribute("a" + std::to_string(J), RandomAttr(Rng));

    Operation *Op = Builder.create(S);
    for (unsigned J = 0; J < NumResults; ++J)
      Available.push_back(Op->getResult(J));
  }

  OwningOpRef M(Operation::create(ModState));
  DiagnosticEngine V;
  ASSERT_TRUE(succeeded(M->verify(V))) << V.renderAll();

  std::string Once = printOpToString(M.get());
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  OwningOpRef M2 = parseSourceString(Ctx, Once, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(M2))
      << Diags.renderAll() << "\nIR was:\n"
      << Once;
  std::string Twice = printOpToString(M2.get());
  EXPECT_EQ(Once, Twice);

  DiagnosticEngine V2;
  EXPECT_TRUE(succeeded(M2->verify(V2))) << V2.renderAll();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundTripTest,
                         ::testing::Range(0, 24));

TEST(AttrNameQuoting, NonIdentifierNamesRoundTrip) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("q");
  D->addOp("op");
  OperationState S(Ctx, D->lookupOp("op"));
  S.addAttribute("dotted.name", Ctx.getIntegerAttr(1, 32));
  S.addAttribute("with space", Ctx.getUnitAttr());
  OwningOpRef Op(Operation::create(S));

  std::string Text = printOpToString(Op.get());
  EXPECT_NE(Text.find("\"dotted.name\""), std::string::npos) << Text;
  EXPECT_NE(Text.find("\"with space\""), std::string::npos) << Text;

  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  OwningOpRef M = parseSourceString(Ctx, Text, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(M)) << Text << "\n" << Diags.renderAll();
  Operation &Parsed = M->getRegion(0).front().front();
  EXPECT_EQ(Parsed.getAttr("dotted.name"), Ctx.getIntegerAttr(1, 32));
  EXPECT_EQ(Parsed.getAttr("with space"), Ctx.getUnitAttr());
}

} // namespace
