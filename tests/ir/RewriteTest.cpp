//===- RewriteTest.cpp - Pattern rewriting -----------------------------===//

#include "ir/Context.h"
#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "ir/Rewrite.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class RewriteTest : public ::testing::Test {
protected:
  RewriteTest() : Diags(&SrcMgr) {}

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

/// Rewrites x + x into x * 2... actually into mulf(x, x) to stay in the
/// float domain: addf(%a, %a) -> mulf(%a, %a) for test purposes.
struct AddSelfToMul : RewritePattern {
  AddSelfToMul() : RewritePattern("std.addf") {}

  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    if (Op->getOperand(0) != Op->getOperand(1))
      return failure();
    OperationState State(*Rewriter.getContext(),
                         Rewriter.getContext()->resolveOpDef("std.mulf"),
                         Op->getLoc());
    State.Operands = {Op->getOperand(0), Op->getOperand(1)};
    State.ResultTypes = {Op->getResult(0).getType()};
    Operation *Mul = Rewriter.createOp(State);
    Rewriter.replaceOp(Op, {Mul->getResult(0)});
    return success();
  }
};

/// Folds mulf(constant, constant) into a constant.
struct FoldMulOfConstants : RewritePattern {
  FoldMulOfConstants() : RewritePattern("std.mulf", /*Benefit=*/2) {}

  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    Operation *L = Op->getOperand(0).getDefiningOp();
    Operation *R = Op->getOperand(1).getDefiningOp();
    auto IsConst = [](Operation *D) {
      return D && D->getName().str() == "std.constant";
    };
    if (!IsConst(L) || !IsConst(R))
      return failure();
    IRContext *Ctx = Rewriter.getContext();
    double LV = L->getAttr("value").getParams()[0].getFloat().Value;
    double RV = R->getAttr("value").getParams()[0].getFloat().Value;
    unsigned Width = L->getAttr("value").getParams()[0].getFloat().Width;
    OperationState State(*Ctx, Ctx->resolveOpDef("std.constant"), Op->getLoc());
    State.addAttribute("value", Ctx->getFloatAttr(LV * RV, Width));
    State.ResultTypes = {Op->getResult(0).getType()};
    Operation *Folded = Rewriter.createOp(State);
    Rewriter.replaceOp(Op, {Folded->getResult(0)});
    return success();
  }
};

TEST_F(RewriteTest, SimpleRewrite) {
  OwningOpRef M = parse(R"(
    std.func @f(%a: f32) -> f32 {
      %s = std.addf %a, %a : f32
      std.return %s : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  RewritePatternSet Patterns(&Ctx);
  Patterns.add<AddSelfToMul>();
  RewriteStatistics Stats = applyPatternsGreedily(M.get(), Patterns);
  EXPECT_EQ(Stats.NumRewrites, 1u);
  EXPECT_TRUE(Stats.Converged);

  std::string Text = printOpToString(M.get());
  EXPECT_NE(Text.find("std.mulf"), std::string::npos);
  EXPECT_EQ(Text.find("std.addf"), std::string::npos);
}

TEST_F(RewriteTest, CascadingRewrites) {
  // Folding proceeds bottom-up: two folds collapse the whole chain.
  OwningOpRef M = parse(R"(
    std.func @f() -> f32 {
      %a = std.constant 2.0 : f32
      %b = std.constant 3.0 : f32
      %c = std.mulf %a, %b : f32
      %d = std.mulf %c, %c : f32
      std.return %d : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  RewritePatternSet Patterns(&Ctx);
  Patterns.add<FoldMulOfConstants>();
  RewriteStatistics Stats = applyPatternsGreedily(M.get(), Patterns);
  EXPECT_EQ(Stats.NumRewrites, 2u);

  unsigned Erased = eraseDeadOps(M.get(), {"std.constant", "std.mulf"});
  EXPECT_GE(Erased, 2u);

  std::string Text = printOpToString(M.get());
  EXPECT_EQ(Text.find("std.mulf"), std::string::npos);
  EXPECT_NE(Text.find("36"), std::string::npos); // (2*3)^2
}

TEST_F(RewriteTest, NoMatchMeansNoChange) {
  OwningOpRef M = parse(R"(
    std.func @f(%a: f32, %b: f32) -> f32 {
      %s = std.addf %a, %b : f32
      std.return %s : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  std::string Before = printOpToString(M.get());

  RewritePatternSet Patterns(&Ctx);
  Patterns.add<AddSelfToMul>(); // Requires equal operands.
  RewriteStatistics Stats = applyPatternsGreedily(M.get(), Patterns);
  EXPECT_EQ(Stats.NumRewrites, 0u);
  EXPECT_EQ(printOpToString(M.get()), Before);
}

TEST_F(RewriteTest, BenefitOrdersPatterns) {
  // Both patterns match mulf of constants; the higher-benefit one (the
  // fold) must win over a lower-benefit one that would rename it.
  struct RenameMul : RewritePattern {
    RenameMul() : RewritePattern("std.mulf", /*Benefit=*/1) {}
    LogicalResult
    matchAndRewrite(Operation *Op,
                    PatternRewriter &Rewriter) const override {
      if (Op->getAttr("renamed"))
        return failure();
      Op->setAttr("renamed",
                  Rewriter.getContext()->getUnitAttr());
      Rewriter.notifyOpModified(Op);
      return success();
    }
  };

  OwningOpRef M = parse(R"(
    std.func @f() -> f32 {
      %a = std.constant 2.0 : f32
      %c = std.mulf %a, %a : f32
      std.return %c : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  RewritePatternSet Patterns(&Ctx);
  Patterns.add<RenameMul>();
  Patterns.add<FoldMulOfConstants>();
  applyPatternsGreedily(M.get(), Patterns);

  std::string Text = printOpToString(M.get());
  // The fold ran; the mulf is gone (after DCE) rather than renamed.
  eraseDeadOps(M.get(), {"std.constant", "std.mulf"});
  Text = printOpToString(M.get());
  EXPECT_EQ(Text.find("renamed"), std::string::npos);
  EXPECT_EQ(Text.find("std.mulf"), std::string::npos);
}

TEST_F(RewriteTest, EraseDeadOpsRespectsUses) {
  OwningOpRef M = parse(R"(
    std.func @f() -> f32 {
      %a = std.constant 2.0 : f32
      %b = std.constant 3.0 : f32
      std.return %a : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  unsigned Erased = eraseDeadOps(M.get(), {"std.constant"});
  EXPECT_EQ(Erased, 1u); // Only %b is dead.
  std::string Text = printOpToString(M.get());
  EXPECT_NE(Text.find("std.constant 2"), std::string::npos);
}

} // namespace
