//===- ArenaTest.cpp - OpArena behavior and the one-allocation lock ----===//
///
/// Locks the tentpole property of the trailing-object storage refactor:
/// Operation::create performs exactly ONE arena allocation per operation
/// — operands, results, successors, and region headers all live inside
/// the op's block. Verified with a statistic-delta, the same technique
/// PR 8 used to lock spec-cache no-recompile behavior.

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/OpArena.h"
#include "ir/Region.h"
#include "support/Metrics.h"
#include "support/Statistic.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace irdl;

namespace {

uint64_t arenaAllocCount() {
  Statistic *S =
      StatisticRegistry::instance().lookup("Arena", "NumArenaAllocations");
  return S ? S->get() : 0;
}

class ArenaTest : public ::testing::Test {
protected:
  ArenaTest() {
    Dialect *D = Ctx.getOrCreateDialect("test");
    ProduceDef = D->addOp("produce");
    ConsumeDef = D->addOp("consume");
    RegionedDef = D->addOp("regioned");
  }

  Operation *makeProduce(unsigned NumResults = 1) {
    OperationState State(Ctx, OperationName(ProduceDef));
    for (unsigned I = 0; I != NumResults; ++I)
      State.ResultTypes.push_back(Ctx.getFloatType(32));
    return Operation::create(State);
  }

  IRContext Ctx;
  OpDefinition *ProduceDef = nullptr;
  OpDefinition *ConsumeDef = nullptr;
  OpDefinition *RegionedDef = nullptr;
};

TEST_F(ArenaTest, CreateIsExactlyOneArenaAllocation) {
  // A plain op: no operands, one result.
  uint64_t Before = arenaAllocCount();
  Operation *P = makeProduce();
  EXPECT_EQ(arenaAllocCount() - Before, 1u);

  // Operands, results, successors, and regions all ride in the same
  // block: still one allocation each.
  Before = arenaAllocCount();
  OperationState CS(Ctx, OperationName(ConsumeDef));
  CS.Operands = {P->getResult(0), P->getResult(0), P->getResult(0)};
  Operation *C = Operation::create(CS);
  EXPECT_EQ(arenaAllocCount() - Before, 1u);

  Before = arenaAllocCount();
  OperationState RS(Ctx, OperationName(RegionedDef));
  RS.ResultTypes = {Ctx.getFloatType(32), Ctx.getIntegerType(32)};
  RS.addRegion();
  RS.addRegion();
  Operation *R = Operation::create(RS);
  EXPECT_EQ(arenaAllocCount() - Before, 1u);

  R->destroy();
  C->destroy();
  P->destroy();
}

TEST_F(ArenaTest, BulkCreateDeltaMatchesOpCount) {
  // The delta test at scale: N creations == N arena allocations.
  constexpr unsigned N = 1000;
  std::vector<Operation *> Ops;
  Ops.reserve(N);
  Operation *P = makeProduce();
  uint64_t Before = arenaAllocCount();
  for (unsigned I = 0; I != N; ++I) {
    OperationState S(Ctx, OperationName(ConsumeDef));
    S.Operands = {P->getResult(0)};
    Ops.push_back(Operation::create(S));
  }
  EXPECT_EQ(arenaAllocCount() - Before, uint64_t(N));
  for (Operation *Op : Ops)
    Op->destroy();
  P->destroy();
}

TEST_F(ArenaTest, EraseReturnsMemoryToFreeList) {
  OpArenaStats Start = Ctx.getOpArena().getStats();
  Operation *A = makeProduce();
  A->destroy();
  // Same shape → same size class → the freed block is reused.
  Operation *B = makeProduce();
  OpArenaStats S = Ctx.getOpArena().getStats();
  EXPECT_GE(S.FreeListHits, Start.FreeListHits + 1);
  EXPECT_GE(S.BytesReused, Start.BytesReused + 1);
  B->destroy();
  OpArenaStats End = Ctx.getOpArena().getStats();
  EXPECT_EQ(End.BytesLive, Start.BytesLive);
  EXPECT_EQ(End.NumFrees, Start.NumFrees + 2);
}

TEST_F(ArenaTest, StatsTrackSlabsAndLiveBytes) {
  OpArenaStats Before = Ctx.getOpArena().getStats();
  // The context itself allocates nothing until ops are created; creating
  // many ops must grow live bytes and eventually reserve slabs.
  std::vector<Operation *> Ops;
  for (unsigned I = 0; I != 5000; ++I)
    Ops.push_back(makeProduce());
  OpArenaStats During = Ctx.getOpArena().getStats();
  EXPECT_GT(During.BytesLive, Before.BytesLive);
  EXPECT_GT(During.Slabs, 0u);
  EXPECT_EQ(During.NumAllocs, Before.NumAllocs + 5000);
  for (Operation *Op : Ops)
    Op->destroy();
  OpArenaStats After = Ctx.getOpArena().getStats();
  EXPECT_EQ(After.BytesLive, Before.BytesLive);
  // Slab memory is retained for reuse, not released.
  EXPECT_EQ(After.Slabs, During.Slabs);
}

TEST_F(ArenaTest, OperandGrowthKeepsValuesAndUseLists) {
  // addOperand past the inline capacity moves the operand array out of
  // line; the op must keep all values and the use lists must stay sound.
  Operation *P = makeProduce();
  OperationState CS(Ctx, OperationName(ConsumeDef));
  Operation *C = Operation::create(CS); // zero inline operand slots
  for (unsigned I = 0; I != 33; ++I)
    C->addOperand(P->getResult(0));
  ASSERT_EQ(C->getNumOperands(), 33u);
  for (unsigned I = 0; I != 33; ++I)
    EXPECT_EQ(C->getOperand(I), P->getResult(0));
  EXPECT_EQ(P->getResult(0).getNumUses(), 33u);
  for (OpOperand *Use = P->getResult(0).getFirstUse(); Use;
       Use = Use->getNextUse())
    EXPECT_EQ(Use->getOwner(), C);
  C->destroy();
  EXPECT_TRUE(P->getResult(0).use_empty());
  P->destroy();
}

TEST_F(ArenaTest, LargeOperandListIsStillOneAllocation) {
  // > MaxBucketedSize worth of operands goes down the large-block path,
  // which must still be a single allocate() call.
  Operation *P = makeProduce();
  OperationState S(Ctx, OperationName(ConsumeDef));
  S.Operands.assign(300, P->getResult(0)); // 300 * sizeof(OpOperand) > 4096
  uint64_t Before = arenaAllocCount();
  Operation *C = Operation::create(S);
  EXPECT_EQ(arenaAllocCount() - Before, 1u);
  EXPECT_EQ(C->getNumOperands(), 300u);
  C->destroy();
  P->destroy();
}

TEST_F(ArenaTest, ParallelCreateEraseAcrossThreads) {
  // Per-thread shards: concurrent create/erase on one context must be
  // race-free (exercised under TSan in CI) and leak nothing.
  OpArenaStats Before = Ctx.getOpArena().getStats();
  constexpr unsigned NumThreads = 8;
  constexpr unsigned PerThread = 500;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([this] {
      for (unsigned I = 0; I != PerThread; ++I) {
        Operation *P = makeProduce();
        OperationState S(Ctx, OperationName(ConsumeDef));
        S.Operands = {P->getResult(0)};
        Operation *C = Operation::create(S);
        C->destroy();
        P->destroy();
      }
    });
  for (std::thread &T : Threads)
    T.join();
  OpArenaStats After = Ctx.getOpArena().getStats();
  EXPECT_EQ(After.BytesLive, Before.BytesLive);
  EXPECT_EQ(After.NumAllocs - Before.NumAllocs,
            After.NumFrees - Before.NumFrees);
}

TEST_F(ArenaTest, BlockCreateIsExactlyOneArenaAllocation) {
  // An argumentless block.
  uint64_t Before = arenaAllocCount();
  Block *B = Block::create(Ctx);
  EXPECT_EQ(arenaAllocCount() - Before, 1u);
  B->destroy();

  // Block arguments ride inline in the block's allocation: still one.
  std::vector<Type> Args(8, Ctx.getFloatType(32));
  Before = arenaAllocCount();
  Block *BA = Block::create(Ctx, Args);
  EXPECT_EQ(arenaAllocCount() - Before, 1u);
  EXPECT_EQ(BA->getNumArguments(), 8u);
  BA->destroy();
}

TEST_F(ArenaTest, LargeArgumentBlockIsStillOneAllocation) {
  // 300 arguments push the layout past MaxBucketedSize, so this goes down
  // the large-block path — which must still be a single allocate() call.
  std::vector<Type> Args(300, Ctx.getFloatType(32));
  OpArenaStats StatsBefore = Ctx.getOpArena().getStats();
  uint64_t Before = arenaAllocCount();
  Block *B = Block::create(Ctx, Args);
  EXPECT_EQ(arenaAllocCount() - Before, 1u);
  OpArenaStats StatsAfter = Ctx.getOpArena().getStats();
  EXPECT_EQ(StatsAfter.LargeAllocs, StatsBefore.LargeAllocs + 1);
  ASSERT_EQ(B->getNumArguments(), 300u);
  for (unsigned I = 0; I != 300; ++I)
    EXPECT_EQ(B->getArgument(I).getIndex(), I);
  B->destroy();
  EXPECT_EQ(Ctx.getOpArena().getStats().BytesLive, StatsBefore.BytesLive);
}

TEST_F(ArenaTest, ErasedBlocksAreReused) {
  OpArenaStats Start = Ctx.getOpArena().getStats();
  Block *A = Block::create(Ctx);
  A->destroy();
  // Same shape → same size class → the freed slot is reused.
  Block *B = Block::create(Ctx);
  OpArenaStats S = Ctx.getOpArena().getStats();
  EXPECT_GE(S.FreeListHits, Start.FreeListHits + 1);
  EXPECT_GE(S.BytesReused, Start.BytesReused + 1);
  B->destroy();
  OpArenaStats End = Ctx.getOpArena().getStats();
  EXPECT_EQ(End.BytesLive, Start.BytesLive);
  EXPECT_EQ(End.NumFrees, Start.NumFrees + 2);
}

TEST_F(ArenaTest, LiveBytesGaugeDrainsOnContextDestruction) {
  bool WasEnabled = metricsEnabled();
  setMetricsEnabled(true);
  Gauge &Live = MetricsRegistry::instance().getGauge(
      "ir_arena_bytes_live", "bytes currently handed out by operation arenas");
  int64_t Before = Live.get();
  {
    IRContext Local;
    Dialect *D = Local.getOrCreateDialect("test");
    OpDefinition *Def = D->addOp("produce");
    std::vector<Type> ArgTypes{Local.getFloatType(32)};
    Region R(Local);
    for (unsigned I = 0; I != 100; ++I) {
      Block &B = R.emplaceBlock(ArgTypes);
      OperationState S(Local, OperationName(Def));
      S.ResultTypes.push_back(Local.getFloatType(32));
      B.push_back(Operation::create(S));
    }
    EXPECT_GT(Live.get(), Before);
  }
  // Blocks, args, and ops all lived on the context's arena; destroying the
  // context must return the live-bytes gauge exactly to its prior level.
  EXPECT_EQ(Live.get(), Before);
  setMetricsEnabled(WasEnabled);
}

TEST_F(ArenaTest, RawArenaRoundUpAndReuse) {
  OpArena A;
  EXPECT_EQ(OpArena::roundUp(1), OpArena::Granule);
  EXPECT_EQ(OpArena::roundUp(16), 16u);
  EXPECT_EQ(OpArena::roundUp(17), 32u);
  void *P1 = A.allocate(100);
  A.deallocate(P1, 100);
  void *P2 = A.allocate(100);
  EXPECT_EQ(P1, P2); // same size class → same free-list block
  A.deallocate(P2, 100);
  // Large blocks round-trip through the out-of-band map.
  void *L = A.allocate(100000);
  ASSERT_NE(L, nullptr);
  A.deallocate(L, 100000);
  OpArenaStats S = A.getStats();
  EXPECT_EQ(S.LargeAllocs, 1u);
  EXPECT_EQ(S.BytesLive, 0u);
}

} // namespace
