//===- RoundTripTest.cpp - print(parse(x)) == print(parse(print(parse(x))))===//

#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "ir/Block.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class RoundTripTest : public ::testing::TestWithParam<const char *> {
protected:
  RoundTripTest() : Diags(&SrcMgr) {
    Dialect *D = Ctx.getOrCreateDialect("test");
    D->addOp("source");
    D->addOp("sink");
    D->addOp("pair");
    D->addOp("wrap");
    TypeDefinition *Complex =
        Ctx.getOrCreateDialect("cmath")->addType("complex");
    Complex->setParamNames({"elementType"});
    AttrDefinition *Frac =
        Ctx.lookupDialect("cmath")->addAttr("fraction");
    Frac->setParamNames({"num", "den"});
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

TEST_P(RoundTripTest, Stable) {
  OwningOpRef First = parseSourceString(Ctx, GetParam(), SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(First)) << Diags.renderAll();
  std::string Once = printOpToString(First.get());

  OwningOpRef Second = parseSourceString(Ctx, Once, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(Second))
      << "failed to reparse:\n"
      << Once << "\n"
      << Diags.renderAll();
  std::string Twice = printOpToString(Second.get());
  EXPECT_EQ(Once, Twice);
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTripTest,
    ::testing::Values(
        // Straight-line generic ops.
        R"(%0 = "test.source"() : () -> (f32)
           "test.sink"(%0) : (f32) -> ())",
        // Multi-result ops.
        R"(%p:2 = "test.pair"() : () -> (f32, i1)
           "test.sink"(%p#0) : (f32) -> ()
           "test.sink"(%p#1) : (i1) -> ())",
        // Attributes of every builtin kind.
        R"("test.sink"() {a = 3 : i32, b = -7 : si16, c = 2.5 : f32,
                          d = "str", e = unit, f = [1 : i32, true],
                          g = f32, h = (i32) -> f32,
                          i = #cmath.fraction<1 : i32, 2 : i32>}
           : () -> ())",
        // Dialect types with parameters.
        R"(%0 = "test.source"() : () -> (!cmath.complex<f32>)
           "test.sink"(%0) : (!cmath.complex<f32>) -> ())",
        // Functions, CFGs, and block arguments.
        R"(std.func @f(%c: i1) -> f32 {
             %x = "test.source"() : () -> (f32)
             "std.cond_br"(%c)[^a, ^b] : (i1) -> ()
           ^a:
             "std.br"()[^join] : () -> ()
           ^b:
             "std.br"()[^join] : () -> ()
           ^join:
             std.return %x : f32
           })",
        // Custom syntax: std arithmetic.
        R"(std.func @g(%a: f32, %b: f32) -> f32 {
             %c = std.mulf %a, %b : f32
             %d = std.addf %c, %a : f32
             std.return %d : f32
           })",
        // Constants.
        R"(%c = std.constant 1.5 : f32
           %i = std.constant 42 : i32
           "test.sink"(%c) : (f32) -> ())",
        // Nested regions in generic form.
        R"("test.wrap"() ({
             %0 = "test.source"() : () -> (f32)
           }) : () -> ())",
        // Empty module.
        R"(module {
           })"));

TEST_F(RoundTripTest, VerifiedAfterRoundTrip) {
  const char *Src = R"(
    std.func @f(%a: f32) -> f32 {
      %b = std.mulf %a, %a : f32
      std.return %b : f32
    }
  )";
  OwningOpRef M = parseSourceString(Ctx, Src, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();
  std::string Text = printOpToString(M.get());
  OwningOpRef M2 = parseSourceString(Ctx, Text, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(M2)) << Text << Diags.renderAll();
  DiagnosticEngine V2;
  EXPECT_TRUE(succeeded(M2->verify(V2))) << V2.renderAll();
}

TEST_F(RoundTripTest, GenericFormRoundTrips) {
  const char *Src = R"(
    std.func @f(%a: f32) -> f32 {
      %b = std.mulf %a, %a : f32
      std.return %b : f32
    }
  )";
  OwningOpRef M = parseSourceString(Ctx, Src, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  PrintOptions Generic;
  Generic.GenericForm = true;
  std::string Text = printOpToString(M.get(), Generic);
  EXPECT_NE(Text.find("\"std.func\""), std::string::npos);
  EXPECT_NE(Text.find("\"std.mulf\""), std::string::npos);
  OwningOpRef M2 = parseSourceString(Ctx, Text, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(M2)) << Text << "\n" << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M2->verify(V))) << V.renderAll();
}

} // namespace
