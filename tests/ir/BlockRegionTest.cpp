//===- BlockRegionTest.cpp - Blocks, regions, terminators --------------===//

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class BlockRegionTest : public ::testing::Test {
protected:
  BlockRegionTest() {
    Dialect *D = Ctx.getOrCreateDialect("test");
    PlainDef = D->addOp("plain");
    ProduceDef = D->addOp("produce");
    BrDef = Ctx.lookupDialect("std")->lookupOp("br");
  }

  Operation *makePlain() {
    OperationState State(Ctx, OperationName(PlainDef));
    return Operation::create(State);
  }

  Operation *makeProduce() {
    OperationState State(Ctx, OperationName(ProduceDef));
    State.ResultTypes.push_back(Ctx.getFloatType(32));
    return Operation::create(State);
  }

  Operation *makeConsume(std::vector<Value> Operands) {
    OperationState State(Ctx, OperationName(PlainDef));
    State.Operands = std::move(Operands);
    return Operation::create(State);
  }

  Operation *makeBr(Block *Target) {
    OperationState State(Ctx, OperationName(BrDef));
    State.addSuccessor(Target);
    return Operation::create(State);
  }

  IRContext Ctx;
  OpDefinition *PlainDef = nullptr;
  OpDefinition *ProduceDef = nullptr;
  OpDefinition *BrDef = nullptr;
};

TEST_F(BlockRegionTest, InsertAndIterate) {
  Block *B = Block::create(Ctx);
  Operation *A = makePlain();
  Operation *C = makePlain();
  B->push_back(A);
  B->push_back(C);
  EXPECT_EQ(B->getNumOps(), 2u);
  EXPECT_EQ(&B->front(), A);
  EXPECT_EQ(&B->back(), C);
  EXPECT_EQ(A->getBlock(), B);
  EXPECT_EQ(A->getNextNode(), C);
  B->destroy();
}

TEST_F(BlockRegionTest, RemoveFromBlock) {
  Block *B = Block::create(Ctx);
  Operation *A = makePlain();
  B->push_back(A);
  A->removeFromBlock();
  EXPECT_TRUE(B->empty());
  EXPECT_EQ(A->getBlock(), nullptr);
  A->destroy();
  B->destroy();
}

TEST_F(BlockRegionTest, EraseOp) {
  Block *B = Block::create(Ctx);
  Operation *A = makePlain();
  B->push_back(A);
  A->erase();
  EXPECT_TRUE(B->empty());
  B->destroy();
}

TEST_F(BlockRegionTest, TerminatorDetection) {
  OperationState ModState(Ctx, OperationName(Ctx.resolveOpDef("builtin.module")));
  Region *R = ModState.addRegion();
  Block *B1 = Block::create(Ctx);
  Block *B2 = Block::create(Ctx);
  R->push_back(B1);
  R->push_back(B2);
  B1->push_back(makePlain());
  EXPECT_EQ(B1->getTerminator(), nullptr);
  EXPECT_TRUE(B1->getSuccessors().empty());
  Operation *Br = makeBr(B2);
  B1->push_back(Br);
  EXPECT_EQ(B1->getTerminator(), Br);
  SuccessorRange Succs = B1->getSuccessors();
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0], B2);
  EXPECT_EQ(Succs.vec(), std::vector<Block *>{B2});
  Operation *Mod = Operation::create(ModState);
  Mod->destroy();
}

TEST_F(BlockRegionTest, BlockArguments) {
  Block *B = Block::create(Ctx);
  B->addArgument(Ctx.getFloatType(32));
  B->addArgument(Ctx.getIntegerType(1));
  EXPECT_EQ(B->getNumArguments(), 2u);
  EXPECT_EQ(B->getArgumentTypes()[1], Ctx.getIntegerType(1));
  B->eraseArgument(0);
  EXPECT_EQ(B->getNumArguments(), 1u);
  EXPECT_EQ(B->getArgument(0).getType(), Ctx.getIntegerType(1));
  EXPECT_EQ(B->getArgument(0).getIndex(), 0u);
  B->destroy();
}

TEST_F(BlockRegionTest, CreateWithArgumentTypes) {
  std::vector<Type> Types = {Ctx.getFloatType(32), Ctx.getIntegerType(8),
                             Ctx.getIndexType()};
  Block *B = Block::create(Ctx, Types);
  ASSERT_EQ(B->getNumArguments(), 3u);
  for (unsigned I = 0; I != 3; ++I) {
    EXPECT_EQ(B->getArgument(I).getType(), Types[I]);
    EXPECT_EQ(B->getArgument(I).getIndex(), I);
    EXPECT_EQ(B->getArgument(I).getOwnerBlock(), B);
  }
  EXPECT_EQ(B->getArgumentTypes().vec(), Types);
  EXPECT_EQ(B->getArguments().size(), 3u);
  B->destroy();
}

TEST_F(BlockRegionTest, EraseArgumentReindexesAndKeepsUses) {
  // Regression: erasing a mid-list argument must re-index the survivors
  // AND keep their use lists intact (the storage moves down one slot).
  Block *B = Block::create(
      Ctx, std::initializer_list<Type>{Ctx.getFloatType(32),
                                       Ctx.getFloatType(64),
                                       Ctx.getIntegerType(32)});
  Value A0 = B->getArgument(0);
  Value A2 = B->getArgument(2);
  Operation *C0 = makeConsume({A0, A0});
  Operation *C2 = makeConsume({A2});
  B->push_back(C0);
  B->push_back(C2);

  B->eraseArgument(1); // f64 arg, unused
  ASSERT_EQ(B->getNumArguments(), 2u);
  EXPECT_EQ(B->getArgument(0).getType(), Ctx.getFloatType(32));
  EXPECT_EQ(B->getArgument(1).getType(), Ctx.getIntegerType(32));
  // getIndex() (the arg number) must reflect the new positions.
  EXPECT_EQ(B->getArgument(0).getIndex(), 0u);
  EXPECT_EQ(B->getArgument(1).getIndex(), 1u);
  // The surviving i32 argument moved down a slot; its uses must have
  // been retargeted at the new storage.
  EXPECT_EQ(C0->getOperand(0), B->getArgument(0));
  EXPECT_EQ(C0->getOperand(1), B->getArgument(0));
  EXPECT_EQ(C2->getOperand(0), B->getArgument(1));
  EXPECT_EQ(B->getArgument(0).getNumUses(), 2u);
  EXPECT_EQ(B->getArgument(1).getNumUses(), 1u);
  B->destroy();
}

TEST_F(BlockRegionTest, AddArgumentGrowthKeepsUses) {
  // addArgument past the inline capacity moves the argument array out of
  // line; existing arguments keep their values and use lists.
  Block *B = Block::create(
      Ctx, std::initializer_list<Type>{Ctx.getFloatType(32)});
  Operation *C = makeConsume({B->getArgument(0)});
  B->push_back(C);
  for (unsigned I = 0; I != 33; ++I)
    B->addArgument(Ctx.getIntegerType(32));
  ASSERT_EQ(B->getNumArguments(), 34u);
  EXPECT_EQ(C->getOperand(0), B->getArgument(0));
  EXPECT_EQ(B->getArgument(0).getNumUses(), 1u);
  EXPECT_EQ(B->getArgument(0).getType(), Ctx.getFloatType(32));
  for (unsigned I = 0; I != 34; ++I)
    EXPECT_EQ(B->getArgument(I).getIndex(), I);
  B->destroy();
}

TEST_F(BlockRegionTest, RegionBlockManagement) {
  Region R(Ctx);
  Block &B1 = R.emplaceBlock();
  Block &B2 = R.emplaceBlock();
  EXPECT_EQ(R.getNumBlocks(), 2u);
  EXPECT_EQ(&R.front(), &B1);
  EXPECT_EQ(&R.back(), &B2);
  EXPECT_EQ(B1.getParent(), &R);
  R.erase(&B1);
  EXPECT_EQ(R.getNumBlocks(), 1u);
  EXPECT_EQ(&R.front(), &B2);
}

TEST_F(BlockRegionTest, SplitBefore) {
  Region R(Ctx);
  Block &B = R.emplaceBlock();
  Operation *A = makePlain();
  Operation *C = makePlain();
  Operation *D = makePlain();
  B.push_back(A);
  B.push_back(C);
  B.push_back(D);

  Block *Tail = B.splitBefore(Block::iterator(C));
  EXPECT_EQ(B.getNumOps(), 1u);
  EXPECT_EQ(Tail->getNumOps(), 2u);
  EXPECT_EQ(&Tail->front(), C);
  EXPECT_EQ(C->getBlock(), Tail);
  EXPECT_EQ(R.getNumBlocks(), 2u);
  EXPECT_EQ(B.getNextNode(), Tail);
}

TEST_F(BlockRegionTest, SplitBeforePreservesUseListsAndSuccessors) {
  // Ops moved into the split-off block keep their operand use lists
  // (including uses of the original block's arguments), and a moved
  // terminator keeps its successor list.
  Region R(Ctx);
  Block &B = R.emplaceBlock(std::initializer_list<Type>{Ctx.getFloatType(32)});
  Block &Target = R.emplaceBlock();
  Value Arg = B.getArgument(0);

  Operation *P = makeProduce();
  Operation *UseArg = makeConsume({Arg, P->getResult(0)});
  Operation *Br = makeBr(&Target);
  B.push_back(P);
  B.push_back(UseArg);
  B.push_back(Br);

  Block *Tail = B.splitBefore(Block::iterator(UseArg));
  ASSERT_EQ(Tail->getNumOps(), 2u);
  // Use lists survived the move.
  EXPECT_EQ(UseArg->getOperand(0), Arg);
  EXPECT_EQ(UseArg->getOperand(1), P->getResult(0));
  EXPECT_EQ(Arg.getNumUses(), 1u);
  EXPECT_EQ(Arg.getFirstUse()->getOwner(), UseArg);
  EXPECT_EQ(P->getResult(0).getNumUses(), 1u);
  // The original block's arguments stayed put.
  ASSERT_EQ(B.getNumArguments(), 1u);
  EXPECT_EQ(B.getArgument(0), Arg);
  EXPECT_EQ(Tail->getNumArguments(), 0u);
  // The moved terminator still branches to the same target.
  SuccessorRange Succs = Tail->getSuccessors();
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0], &Target);
  EXPECT_TRUE(B.getSuccessors().empty());
}

TEST_F(BlockRegionTest, BlockEraseUnlinksFromRegion) {
  Region R(Ctx);
  Block &B1 = R.emplaceBlock();
  Block &B2 = R.emplaceBlock();
  (void)B2;
  B1.erase();
  EXPECT_EQ(R.getNumBlocks(), 1u);
  EXPECT_EQ(&R.front(), &B2);
  // A detached block can be erased too.
  Block *Detached = Block::create(Ctx);
  Detached->erase();
}

TEST_F(BlockRegionTest, TakeBody) {
  Region Src(Ctx);
  Src.emplaceBlock();
  Src.emplaceBlock();
  Region Dst(Ctx);
  Dst.takeBody(Src);
  EXPECT_TRUE(Src.empty());
  EXPECT_EQ(Dst.getNumBlocks(), 2u);
  EXPECT_EQ(Dst.front().getParent(), &Dst);
}

TEST_F(BlockRegionTest, CrossBlockReferenceTeardown) {
  // An op in block 2 uses a value from block 1; deleting the region must
  // not trip use-list assertions regardless of order.
  auto *ModDef = Ctx.resolveOpDef("builtin.module");
  OperationState State(Ctx, OperationName(ModDef));
  Region *R = State.addRegion();
  Block *B1 = Block::create(Ctx);
  Block *B2 = Block::create(Ctx);
  R->push_back(B1);
  R->push_back(B2);

  Dialect *D = Ctx.getOrCreateDialect("test");
  OpDefinition *ProduceDef2 = D->addOp("produce2");
  OperationState PS(Ctx, OperationName(ProduceDef2));
  PS.ResultTypes.push_back(Ctx.getFloatType(32));
  Operation *P = Operation::create(PS);
  B1->push_back(P);

  OperationState CS(Ctx, OperationName(PlainDef));
  CS.Operands.push_back(P->getResult(0));
  B2->push_back(Operation::create(CS));

  Operation *Mod = Operation::create(State);
  Mod->destroy(); // Must not assert.
  SUCCEED();
}

} // namespace
