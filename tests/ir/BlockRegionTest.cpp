//===- BlockRegionTest.cpp - Blocks, regions, terminators --------------===//

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class BlockRegionTest : public ::testing::Test {
protected:
  BlockRegionTest() {
    Dialect *D = Ctx.getOrCreateDialect("test");
    PlainDef = D->addOp("plain");
    BrDef = Ctx.lookupDialect("std")->lookupOp("br");
  }

  Operation *makePlain() {
    OperationState State(Ctx, OperationName(PlainDef));
    return Operation::create(State);
  }

  Operation *makeBr(Block *Target) {
    OperationState State(Ctx, OperationName(BrDef));
    State.addSuccessor(Target);
    return Operation::create(State);
  }

  IRContext Ctx;
  OpDefinition *PlainDef = nullptr;
  OpDefinition *BrDef = nullptr;
};

TEST_F(BlockRegionTest, InsertAndIterate) {
  Block B;
  Operation *A = makePlain();
  Operation *C = makePlain();
  B.push_back(A);
  B.push_back(C);
  EXPECT_EQ(B.getNumOps(), 2u);
  EXPECT_EQ(&B.front(), A);
  EXPECT_EQ(&B.back(), C);
  EXPECT_EQ(A->getBlock(), &B);
  EXPECT_EQ(A->getNextNode(), C);
}

TEST_F(BlockRegionTest, RemoveFromBlock) {
  Block B;
  Operation *A = makePlain();
  B.push_back(A);
  A->removeFromBlock();
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(A->getBlock(), nullptr);
  A->destroy();
}

TEST_F(BlockRegionTest, EraseOp) {
  Block B;
  Operation *A = makePlain();
  B.push_back(A);
  A->erase();
  EXPECT_TRUE(B.empty());
}

TEST_F(BlockRegionTest, TerminatorDetection) {
  OperationState ModState(Ctx, OperationName(Ctx.resolveOpDef("builtin.module")));
  Region *R = ModState.addRegion();
  Block *B1 = new Block();
  Block *B2 = new Block();
  R->push_back(B1);
  R->push_back(B2);
  B1->push_back(makePlain());
  EXPECT_EQ(B1->getTerminator(), nullptr);
  Operation *Br = makeBr(B2);
  B1->push_back(Br);
  EXPECT_EQ(B1->getTerminator(), Br);
  auto Succs = B1->getSuccessors();
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_EQ(Succs[0], B2);
  Operation *Mod = Operation::create(ModState);
  Mod->destroy();
}

TEST_F(BlockRegionTest, BlockArguments) {
  Block B;
  B.addArgument(Ctx.getFloatType(32));
  B.addArgument(Ctx.getIntegerType(1));
  EXPECT_EQ(B.getNumArguments(), 2u);
  EXPECT_EQ(B.getArgumentTypes()[1], Ctx.getIntegerType(1));
  B.eraseArgument(0);
  EXPECT_EQ(B.getNumArguments(), 1u);
  EXPECT_EQ(B.getArgument(0).getType(), Ctx.getIntegerType(1));
  EXPECT_EQ(B.getArgument(0).getIndex(), 0u);
}

TEST_F(BlockRegionTest, RegionBlockManagement) {
  Region R(nullptr);
  Block &B1 = R.emplaceBlock();
  Block &B2 = R.emplaceBlock();
  EXPECT_EQ(R.getNumBlocks(), 2u);
  EXPECT_EQ(&R.front(), &B1);
  EXPECT_EQ(&R.back(), &B2);
  EXPECT_EQ(B1.getParent(), &R);
  R.erase(&B1);
  EXPECT_EQ(R.getNumBlocks(), 1u);
  EXPECT_EQ(&R.front(), &B2);
}

TEST_F(BlockRegionTest, SplitBefore) {
  Region R(nullptr);
  Block &B = R.emplaceBlock();
  Operation *A = makePlain();
  Operation *C = makePlain();
  Operation *D = makePlain();
  B.push_back(A);
  B.push_back(C);
  B.push_back(D);

  Block *Tail = B.splitBefore(Block::iterator(C));
  EXPECT_EQ(B.getNumOps(), 1u);
  EXPECT_EQ(Tail->getNumOps(), 2u);
  EXPECT_EQ(&Tail->front(), C);
  EXPECT_EQ(C->getBlock(), Tail);
  EXPECT_EQ(R.getNumBlocks(), 2u);
  EXPECT_EQ(B.getNextNode(), Tail);
}

TEST_F(BlockRegionTest, TakeBody) {
  Region Src(nullptr);
  Src.emplaceBlock();
  Src.emplaceBlock();
  Region Dst(nullptr);
  Dst.takeBody(Src);
  EXPECT_TRUE(Src.empty());
  EXPECT_EQ(Dst.getNumBlocks(), 2u);
  EXPECT_EQ(Dst.front().getParent(), &Dst);
}

TEST_F(BlockRegionTest, CrossBlockReferenceTeardown) {
  // An op in block 2 uses a value from block 1; deleting the region must
  // not trip use-list assertions regardless of order.
  auto *ModDef = Ctx.resolveOpDef("builtin.module");
  OperationState State(Ctx, OperationName(ModDef));
  Region *R = State.addRegion();
  Block *B1 = new Block();
  Block *B2 = new Block();
  R->push_back(B1);
  R->push_back(B2);

  Dialect *D = Ctx.getOrCreateDialect("test");
  OpDefinition *ProduceDef = D->addOp("produce2");
  OperationState PS(Ctx, OperationName(ProduceDef));
  PS.ResultTypes.push_back(Ctx.getFloatType(32));
  Operation *P = Operation::create(PS);
  B1->push_back(P);

  OperationState CS(Ctx, OperationName(PlainDef));
  CS.Operands.push_back(P->getResult(0));
  B2->push_back(Operation::create(CS));

  Operation *Mod = Operation::create(State);
  Mod->destroy(); // Must not assert.
  SUCCEED();
}

} // namespace
