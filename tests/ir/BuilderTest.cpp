//===- BuilderTest.cpp - OpBuilder insertion behaviour -----------------===//

#include "ir/Builder.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class BuilderTest : public ::testing::Test {
protected:
  BuilderTest() : Builder(&Ctx) {
    Dialect *D = Ctx.getOrCreateDialect("test");
    OpDefinition *Def = D->addOp("op");
    Def->setSummary("test op");
    (void)Def;
  }

  IRContext Ctx;
  OpBuilder Builder;
};

TEST_F(BuilderTest, CreateWithoutInsertionPointIsDetached) {
  Operation *Op = Builder.create("test.op", {}, {Ctx.getFloatType(32)});
  EXPECT_EQ(Op->getBlock(), nullptr);
  Op->destroy();
}

TEST_F(BuilderTest, SequentialInsertionAtEnd) {
  Block &B = *Block::create(Ctx);
  Builder.setInsertionPointToEnd(&B);
  Operation *First = Builder.create("test.op", {}, {});
  Operation *Second = Builder.create("test.op", {}, {});
  EXPECT_EQ(&B.front(), First);
  EXPECT_EQ(&B.back(), Second);
  B.destroy();
}

TEST_F(BuilderTest, InsertionBeforeOp) {
  Block &B = *Block::create(Ctx);
  Builder.setInsertionPointToEnd(&B);
  Operation *Last = Builder.create("test.op", {}, {});
  Builder.setInsertionPoint(Last);
  Operation *BeforeLast = Builder.create("test.op", {}, {});
  EXPECT_EQ(&B.front(), BeforeLast);
  EXPECT_EQ(BeforeLast->getNextNode(), Last);
  B.destroy();
}

TEST_F(BuilderTest, InsertionAfterOp) {
  Block &B = *Block::create(Ctx);
  Builder.setInsertionPointToEnd(&B);
  Operation *First = Builder.create("test.op", {}, {});
  Operation *Third = Builder.create("test.op", {}, {});
  Builder.setInsertionPointAfter(First);
  Operation *SecondOp = Builder.create("test.op", {}, {});
  EXPECT_EQ(First->getNextNode(), SecondOp);
  EXPECT_EQ(SecondOp->getNextNode(), Third);
  B.destroy();
}

TEST_F(BuilderTest, InsertionAtStart) {
  Block &B = *Block::create(Ctx);
  Builder.setInsertionPointToEnd(&B);
  Builder.create("test.op", {}, {});
  Builder.setInsertionPointToStart(&B);
  Operation *New = Builder.create("test.op", {}, {});
  EXPECT_EQ(&B.front(), New);
  B.destroy();
}

TEST_F(BuilderTest, ResolveNamePrefersRegistered) {
  OperationName Name = Builder.resolveName("test.op");
  EXPECT_TRUE(Name.isRegistered());
  EXPECT_EQ(Name.str(), "test.op");

  OperationName Std = Builder.resolveName("return");
  EXPECT_EQ(Std.str(), "std.return");
}

TEST_F(BuilderTest, CreateWithOperandsAndAttrs) {
  Block &B = *Block::create(Ctx);
  Builder.setInsertionPointToEnd(&B);
  Operation *P = Builder.create("test.op", {}, {Ctx.getFloatType(32)});
  NamedAttrList Attrs;
  Attrs.set("k", Ctx.getIntegerAttr(7, 32));
  Operation *C =
      Builder.create("test.op", {P->getResult(0)}, {}, std::move(Attrs));
  EXPECT_EQ(C->getNumOperands(), 1u);
  EXPECT_EQ(C->getAttr("k"), Ctx.getIntegerAttr(7, 32));
  B.destroy();
}

} // namespace
