//===- PassInstrumentationTest.cpp - Instrumentation hooks ------------===//
///
/// Locks in the hook-order contract documented in PassInstrumentation.h
/// and the per-run behavior of the pass statistics.

#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Pass.h"
#include "support/Metrics.h"
#include "support/Statistic.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class PassInstrumentationTest : public ::testing::Test {
protected:
  PassInstrumentationTest() : Diags(&SrcMgr) {}

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

/// Appends every hook invocation to a shared event log.
struct RecordingInstrumentation : PassInstrumentation {
  RecordingInstrumentation(std::vector<std::string> *Log,
                           std::string Tag = "")
      : Log(Log), Tag(std::move(Tag)) {}

  void record(std::string Event) { Log->push_back(Tag + Event); }

  void runBeforePipeline(Operation *) override {
    record("before-pipeline");
  }
  void runAfterPipeline(Operation *) override { record("after-pipeline"); }
  void runBeforePass(const Pass *P, Operation *) override {
    record("before-pass:" + std::string(P->getName()));
  }
  void runAfterPass(const Pass *P, Operation *) override {
    record("after-pass:" + std::string(P->getName()));
  }
  void runAfterPassFailed(const Pass *P, Operation *) override {
    record("after-pass-failed:" + std::string(P->getName()));
  }
  void runBeforeVerifier(Operation *) override {
    record("before-verifier");
  }
  void runAfterVerifier(Operation *, bool Succeeded) override {
    record(Succeeded ? "after-verifier:ok" : "after-verifier:fail");
  }

  std::vector<std::string> *Log;
  std::string Tag;
};

struct NoopPass : Pass {
  explicit NoopPass(std::string Name = "noop") : Name(std::move(Name)) {}
  std::string_view getName() const override { return Name; }
  LogicalResult run(Operation *, DiagnosticEngine &) override {
    return success();
  }
  std::string Name;
};

struct FailingPass : Pass {
  std::string_view getName() const override { return "failing"; }
  LogicalResult run(Operation *Op, DiagnosticEngine &Diags) override {
    Diags.emitError(Op->getLoc(), "this pass always fails");
    return failure();
  }
};

TEST_F(PassInstrumentationTest, SuccessPathHookOrder) {
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  std::vector<std::string> Log;
  PassManager PM(&Ctx);
  PM.addInstrumentation<RecordingInstrumentation>(&Log);
  PM.addPass<NoopPass>("first");
  PM.addPass<NoopPass>("second");
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags)));

  std::vector<std::string> Expected = {
      "before-pipeline",
      "before-verifier", "after-verifier:ok", // initial verify
      "before-pass:first", "after-pass:first",
      "before-verifier", "after-verifier:ok",
      "before-pass:second", "after-pass:second",
      "before-verifier", "after-verifier:ok",
      "after-pipeline",
  };
  EXPECT_EQ(Log, Expected);
}

TEST_F(PassInstrumentationTest, VerifierHooksSkippedWhenDisabled) {
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  std::vector<std::string> Log;
  PassManager PM(&Ctx);
  PM.enableVerifier(false);
  PM.addInstrumentation<RecordingInstrumentation>(&Log);
  PM.addPass<NoopPass>();
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags)));

  std::vector<std::string> Expected = {
      "before-pipeline",
      "before-pass:noop", "after-pass:noop",
      "after-pipeline",
  };
  EXPECT_EQ(Log, Expected);
}

TEST_F(PassInstrumentationTest, FailurePathFiresFailedHookAndPipelineEnd) {
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  std::vector<std::string> Log;
  PassManager PM(&Ctx);
  PM.addInstrumentation<RecordingInstrumentation>(&Log);
  PM.addPass<FailingPass>();
  PM.addPass<NoopPass>("never-run");
  DiagnosticEngine PDiags;
  ASSERT_TRUE(failed(PM.run(M.get(), PDiags)));

  std::vector<std::string> Expected = {
      "before-pipeline",
      "before-verifier", "after-verifier:ok",
      "before-pass:failing", "after-pass-failed:failing",
      "after-pipeline", // fires on failure exits too
  };
  EXPECT_EQ(Log, Expected);
}

TEST_F(PassInstrumentationTest, InstrumentationsNestLikeScopes) {
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  std::vector<std::string> Log;
  PassManager PM(&Ctx);
  PM.enableVerifier(false);
  PM.addInstrumentation<RecordingInstrumentation>(&Log, "A:");
  PM.addInstrumentation<RecordingInstrumentation>(&Log, "B:");
  PM.addPass<NoopPass>();
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags)));

  // Before-hooks in registration order, after-hooks reversed.
  std::vector<std::string> Expected = {
      "A:before-pipeline", "B:before-pipeline",
      "A:before-pass:noop", "B:before-pass:noop",
      "B:after-pass:noop", "A:after-pass:noop",
      "B:after-pipeline", "A:after-pipeline",
  };
  EXPECT_EQ(Log, Expected);
}

TEST_F(PassInstrumentationTest, PassTimingBuildsPipelineTree) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  TimerGroup Timers("test");
  PassManager PM(&Ctx);
  PM.addInstrumentation<PassTimingInstrumentation>(&Timers);
  PM.addPass<NoopPass>("alpha");
  PM.addPass<NoopPass>("beta");
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags)));

  const TimerGroup::Node *Pipeline =
      Timers.getRoot().findChild("pass-pipeline");
  ASSERT_NE(Pipeline, nullptr);
  EXPECT_EQ(Pipeline->getCount(), 1u);
  EXPECT_NE(Pipeline->findChild("alpha"), nullptr);
  EXPECT_NE(Pipeline->findChild("beta"), nullptr);
  // Verifier runs (initial + after each pass) aggregate into one node.
  const TimerGroup::Node *Verify = Pipeline->findChild("verify-each");
  ASSERT_NE(Verify, nullptr);
  EXPECT_EQ(Verify->getCount(), 3u);
}

TEST_F(PassInstrumentationTest, PassTimingClosesScopesOnFailure) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  TimerGroup Timers("test");
  PassManager PM(&Ctx);
  PM.addInstrumentation<PassTimingInstrumentation>(&Timers);
  PM.addPass<FailingPass>();
  DiagnosticEngine PDiags;
  ASSERT_TRUE(failed(PM.run(M.get(), PDiags)));

  // The failed pass's scope and the pipeline scope are both closed, so
  // a subsequent run on the same group starts at the root again.
  const TimerGroup::Node *Pipeline =
      Timers.getRoot().findChild("pass-pipeline");
  ASSERT_NE(Pipeline, nullptr);
  EXPECT_EQ(Pipeline->getCount(), 1u);
  EXPECT_NE(Pipeline->findChild("failing"), nullptr);

  OwningOpRef M2 = parse("%c = std.constant 2.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M2)) << Diags.renderAll();
  PassManager PM2(&Ctx);
  PM2.addInstrumentation<PassTimingInstrumentation>(&Timers);
  PM2.addPass<NoopPass>();
  ASSERT_TRUE(succeeded(PM2.run(M2.get(), PDiags)));
  EXPECT_EQ(Pipeline->getCount(), 2u);
  EXPECT_NE(Pipeline->findChild("noop"), nullptr);
}

TEST_F(PassInstrumentationTest, DceCountsAreResetPerRun) {
  // Regression: a reused DCE pass instance must report per-run counts,
  // not a running total across pipelines.
  auto DCE = std::make_unique<DeadCodeEliminationPass>(
      std::vector<std::string>{}, /*AssumeRegisteredOpsPure=*/true);
  DeadCodeEliminationPass *DCEPtr = DCE.get();
  PassManager PM(&Ctx);
  PM.addPass(std::move(DCE));
  DiagnosticEngine PDiags;

  OwningOpRef M1 = parse(R"(
    std.func @f() {
      %dead1 = std.constant 1.0 : f32
      %dead2 = std.constant 2.0 : f32
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M1)) << Diags.renderAll();
  ASSERT_TRUE(succeeded(PM.run(M1.get(), PDiags)));
  EXPECT_EQ(DCEPtr->getNumErased(), 2u);

  OwningOpRef M2 = parse(R"(
    std.func @g() {
      %dead = std.constant 3.0 : f32
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M2)) << Diags.renderAll();
  ASSERT_TRUE(succeeded(PM.run(M2.get(), PDiags)));
  EXPECT_EQ(DCEPtr->getNumErased(), 1u) << "stale count from first run";
}

TEST_F(PassInstrumentationTest, DceExposesRegistryStatistic) {
  Statistic *NumOpsErased =
      StatisticRegistry::instance().lookup("DCE", "NumOpsErased");
  ASSERT_NE(NumOpsErased, nullptr)
      << "DCE.NumOpsErased not registered with the statistics registry";
  uint64_t Before = NumOpsErased->get();

  OwningOpRef M = parse(R"(
    std.func @f() {
      %dead1 = std.constant 1.0 : f32
      %dead2 = std.constant 2.0 : f32
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  PassManager PM(&Ctx);
  PM.addPass<DeadCodeEliminationPass>(std::vector<std::string>{},
                                      /*AssumeRegisteredOpsPure=*/true);
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags)));
  // The registry counter accumulates across runs (two ops erased here).
  EXPECT_EQ(NumOpsErased->get(), Before + 2);

  // The pipeline counters are registered too.
  EXPECT_NE(StatisticRegistry::instance().lookup("Pass", "NumPassesRun"),
            nullptr);
}

TEST_F(PassInstrumentationTest, MetricsInstrumentationRecordsPassHistograms) {
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  setMetricsEnabled(true);
  MetricsRegistry::instance().resetAll();
  PassManager PM(&Ctx);
  PM.addInstrumentation<MetricsInstrumentation>();
  PM.addPass<NoopPass>("alpha");
  PM.addPass<NoopPass>("beta");
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags)));
  setMetricsEnabled(false);

  MetricsRegistry &R = MetricsRegistry::instance();
  EXPECT_EQ(R.getHistogram("irdl_pass_duration_ns", "", {{"pass", "alpha"}})
                .snapshot()
                .Count,
            1u);
  EXPECT_EQ(R.getHistogram("irdl_pass_duration_ns", "", {{"pass", "beta"}})
                .snapshot()
                .Count,
            1u);
  // Initial verify + one per pass.
  EXPECT_EQ(
      R.getHistogram("irdl_pass_duration_ns", "", {{"pass", "verify-each"}})
          .snapshot()
          .Count,
      3u);
}

TEST_F(PassInstrumentationTest, MetricsInstrumentationIsInertWhenDisabled) {
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  ASSERT_FALSE(metricsEnabled());
  MetricsRegistry::instance().resetAll();
  PassManager PM(&Ctx);
  PM.addInstrumentation<MetricsInstrumentation>();
  PM.addPass<NoopPass>("gamma");
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags)));

  EXPECT_EQ(MetricsRegistry::instance()
                .getHistogram("irdl_pass_duration_ns", "", {{"pass", "gamma"}})
                .snapshot()
                .Count,
            0u);
}

} // namespace
