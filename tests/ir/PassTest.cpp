//===- PassTest.cpp - Pass manager -----------------------------------===//

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Pass.h"
#include "ir/Printer.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class PassTest : public ::testing::Test {
protected:
  PassTest() : Diags(&SrcMgr) {}

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
};

struct CountingPass : Pass {
  explicit CountingPass(int *Counter) : Counter(Counter) {}
  std::string_view getName() const override { return "counting"; }
  LogicalResult run(Operation *, DiagnosticEngine &) override {
    ++*Counter;
    return success();
  }
  int *Counter;
};

struct FailingPass : Pass {
  std::string_view getName() const override { return "failing"; }
  LogicalResult run(Operation *Op, DiagnosticEngine &Diags) override {
    Diags.emitError(Op->getLoc(), "this pass always fails");
    return failure();
  }
};

struct CorruptingPass : Pass {
  std::string_view getName() const override { return "corrupting"; }
  LogicalResult run(Operation *Root, DiagnosticEngine &) override {
    // Moves a terminator away from the end of its block.
    Operation *Return = nullptr;
    Root->walk([&](Operation *Op) {
      if (Op->getName().str() == "std.return")
        Return = Op;
    });
    if (Return) {
      Block *B = Return->getBlock();
      Return->removeFromBlock();
      B->push_front(Return);
    }
    return success();
  }
};

TEST_F(PassTest, RunsPassesInOrder) {
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  int Counter = 0;
  PassManager PM(&Ctx);
  PM.addPass<CountingPass>(&Counter);
  PM.addPass<CountingPass>(&Counter);
  PassPipelineStatistics Stats;
  DiagnosticEngine PDiags;
  EXPECT_TRUE(succeeded(PM.run(M.get(), PDiags, &Stats)));
  EXPECT_EQ(Counter, 2);
  EXPECT_EQ(Stats.PassesRun, 2u);
}

TEST_F(PassTest, FailureStopsPipeline) {
  OwningOpRef M = parse("%c = std.constant 1.0 : f32");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  int Counter = 0;
  PassManager PM(&Ctx);
  PM.addPass<FailingPass>();
  PM.addPass<CountingPass>(&Counter);
  PassPipelineStatistics Stats;
  DiagnosticEngine PDiags;
  EXPECT_TRUE(failed(PM.run(M.get(), PDiags, &Stats)));
  EXPECT_EQ(Counter, 0);
  EXPECT_EQ(Stats.FailedPass, "failing");
}

TEST_F(PassTest, InterPassVerificationCatchesCorruption) {
  OwningOpRef M = parse(R"(
    std.func @f() {
      %c = std.constant 1.0 : f32
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  PassManager PM(&Ctx);
  PM.addPass<CorruptingPass>();
  PassPipelineStatistics Stats;
  DiagnosticEngine PDiags;
  EXPECT_TRUE(failed(PM.run(M.get(), PDiags, &Stats)));
  EXPECT_TRUE(Stats.VerificationFailed);
  EXPECT_EQ(Stats.FailedPass, "corrupting");
  EXPECT_NE(PDiags.renderAll().find("after pass 'corrupting'"),
            std::string::npos);
}

TEST_F(PassTest, VerifierCanBeDisabled) {
  OwningOpRef M = parse(R"(
    std.func @f() {
      %c = std.constant 1.0 : f32
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  PassManager PM(&Ctx);
  PM.enableVerifier(false);
  PM.addPass<CorruptingPass>();
  DiagnosticEngine PDiags;
  EXPECT_TRUE(succeeded(PM.run(M.get(), PDiags)));
}

TEST_F(PassTest, DeadCodeElimination) {
  OwningOpRef M = parse(R"(
    std.func @f() -> f32 {
      %used = std.constant 1.0 : f32
      %dead1 = std.constant 2.0 : f32
      %dead2 = std.mulf %dead1, %dead1 : f32
      std.return %used : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  PassManager PM(&Ctx);
  auto DCE = std::make_unique<DeadCodeEliminationPass>(
      std::vector<std::string>{}, /*AssumeRegisteredOpsPure=*/true);
  DeadCodeEliminationPass *DCEPtr = DCE.get();
  PM.addPass(std::move(DCE));
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags))) << PDiags.renderAll();
  // Both dead ops go (the mul first, freeing the constant).
  EXPECT_EQ(DCEPtr->getNumErased(), 2u);
  std::string Text = printOpToString(M.get());
  EXPECT_EQ(Text.find("2.0"), std::string::npos);
  EXPECT_NE(Text.find("1.0"), std::string::npos);
}

TEST_F(PassTest, DceConservativeWithoutPurity) {
  OwningOpRef M = parse(R"(
    std.func @f() {
      %dead = std.constant 2.0 : f32
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  PassManager PM(&Ctx);
  // No purity info at all: nothing may be erased.
  PM.addPass<DeadCodeEliminationPass>();
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags)));
  EXPECT_NE(printOpToString(M.get()).find("std.constant"),
            std::string::npos);

  // Explicit pure-op list enables it.
  PassManager PM2(&Ctx);
  PM2.addPass<DeadCodeEliminationPass>(
      std::vector<std::string>{"std.constant"});
  ASSERT_TRUE(succeeded(PM2.run(M.get(), PDiags)));
  EXPECT_EQ(printOpToString(M.get()).find("std.constant"),
            std::string::npos);
}

TEST_F(PassTest, GreedyRewritePassReportsStatistics) {
  OwningOpRef M = parse(R"(
    std.func @f(%a: f32) -> f32 {
      %s = std.addf %a, %a : f32
      std.return %s : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  struct AddToMul : RewritePattern {
    AddToMul() : RewritePattern("std.addf") {}
    LogicalResult
    matchAndRewrite(Operation *Op,
                    PatternRewriter &Rewriter) const override {
      OperationState S(*Rewriter.getContext(),
                       Rewriter.getContext()->resolveOpDef("std.mulf"),
                       Op->getLoc());
      S.Operands = {Op->getOperand(0), Op->getOperand(1)};
      S.ResultTypes = {Op->getResult(0).getType()};
      Operation *Mul = Rewriter.createOp(S);
      Rewriter.replaceOp(Op, {Mul->getResult(0)});
      return success();
    }
  };

  auto Patterns = std::make_shared<RewritePatternSet>(&Ctx);
  Patterns->add<AddToMul>();
  PassManager PM(&Ctx);
  auto RewritePass =
      std::make_unique<GreedyRewritePass>("add-to-mul", Patterns);
  GreedyRewritePass *PassPtr = RewritePass.get();
  PM.addPass(std::move(RewritePass));
  DiagnosticEngine PDiags;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags))) << PDiags.renderAll();
  EXPECT_EQ(PassPtr->getLastStatistics().NumRewrites, 1u);
  EXPECT_TRUE(PassPtr->getLastStatistics().Converged);
}

} // namespace
