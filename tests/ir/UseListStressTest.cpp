//===- UseListStressTest.cpp - use-list integrity over arena ops -------===//
///
/// Randomized stress over the operand-mutation API on arena-allocated
/// operations: addOperand / eraseOperand / setOperands /
/// replaceAllUsesWith / erase, interleaved, with full use-list
/// cross-checks after every step. Runs in the ASan CI job, where the
/// arena's freed-slot poisoning turns any stale-Value dereference into a
/// deterministic trap instead of a silent read of recycled memory.

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

using namespace irdl;

namespace {

/// Deterministic LCG so failures replay.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 17;
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }

private:
  uint64_t State;
};

class UseListStressTest : public ::testing::Test {
protected:
  UseListStressTest() {
    Dialect *D = Ctx.getOrCreateDialect("stress");
    ProduceDef = D->addOp("produce");
    ConsumeDef = D->addOp("consume");
  }

  Operation *makeProducer() {
    OperationState S(Ctx, OperationName(ProduceDef));
    S.ResultTypes = {Ctx.getFloatType(32), Ctx.getIntegerType(32)};
    return Operation::create(S);
  }

  Operation *makeConsumer(std::vector<Value> Operands) {
    OperationState S(Ctx, OperationName(ConsumeDef));
    S.Operands = std::move(Operands);
    return Operation::create(S);
  }

  /// Walks every producer's use lists and checks they exactly mirror the
  /// consumers' operand lists.
  void checkIntegrity(const std::vector<Operation *> &Producers,
                      const std::vector<Operation *> &Consumers) {
    for (Operation *P : Producers) {
      for (unsigned R = 0; R != P->getNumResults(); ++R) {
        Value V = P->getResult(R);
        unsigned UsesSeen = 0;
        for (OpOperand *Use = V.getFirstUse(); Use;
             Use = Use->getNextUse()) {
          ++UsesSeen;
          Operation *Owner = Use->getOwner();
          ASSERT_NE(Owner, nullptr);
          ASSERT_EQ(Use->get(), V);
          // The owner must be a live consumer that really holds V.
          ASSERT_NE(std::find(Consumers.begin(), Consumers.end(), Owner),
                    Consumers.end());
          bool Holds = false;
          for (unsigned I = 0; I != Owner->getNumOperands(); ++I)
            if (Owner->getOperand(I) == V)
              Holds = true;
          ASSERT_TRUE(Holds);
        }
        // Count uses from the consumer side too.
        unsigned UsesExpected = 0;
        for (Operation *C : Consumers)
          for (unsigned I = 0; I != C->getNumOperands(); ++I)
            if (C->getOperand(I) == V)
              ++UsesExpected;
        ASSERT_EQ(UsesSeen, UsesExpected);
        ASSERT_EQ(V.getNumUses(), UsesExpected);
      }
    }
  }

  IRContext Ctx;
  OpDefinition *ProduceDef = nullptr;
  OpDefinition *ConsumeDef = nullptr;
};

TEST_F(UseListStressTest, RandomizedMutationSoup) {
  Rng R(0xD1CE5EED);
  std::vector<Operation *> Producers, Consumers;
  for (unsigned I = 0; I != 8; ++I)
    Producers.push_back(makeProducer());

  auto randomValue = [&] {
    Operation *P = Producers[R.below(Producers.size())];
    return P->getResult(static_cast<unsigned>(R.below(P->getNumResults())));
  };

  for (unsigned Step = 0; Step != 4000; ++Step) {
    switch (R.below(6)) {
    case 0: { // create a consumer with 0..5 operands
      std::vector<Value> Ops;
      for (uint64_t I = 0, N = R.below(6); I != N; ++I)
        Ops.push_back(randomValue());
      Consumers.push_back(makeConsumer(std::move(Ops)));
      break;
    }
    case 1: { // addOperand (possibly past inline capacity)
      if (Consumers.empty())
        break;
      Operation *C = Consumers[R.below(Consumers.size())];
      C->addOperand(randomValue());
      break;
    }
    case 2: { // eraseOperand
      if (Consumers.empty())
        break;
      Operation *C = Consumers[R.below(Consumers.size())];
      if (C->getNumOperands())
        C->eraseOperand(static_cast<unsigned>(
            R.below(C->getNumOperands())));
      break;
    }
    case 3: { // setOperands to a fresh random list
      if (Consumers.empty())
        break;
      Operation *C = Consumers[R.below(Consumers.size())];
      std::vector<Value> Ops;
      for (uint64_t I = 0, N = R.below(8); I != N; ++I)
        Ops.push_back(randomValue());
      C->setOperands(Ops);
      break;
    }
    case 4: { // replaceAllUsesWith on a producer
      Operation *From = Producers[R.below(Producers.size())];
      Operation *To = Producers[R.below(Producers.size())];
      if (From != To)
        From->replaceAllUsesWith(To->getResults());
      break;
    }
    case 5: { // erase a random consumer (recycles its arena block)
      if (Consumers.empty())
        break;
      size_t Idx = R.below(Consumers.size());
      Consumers[Idx]->erase();
      Consumers.erase(Consumers.begin() + Idx);
      break;
    }
    }
    if (Step % 257 == 0)
      checkIntegrity(Producers, Consumers);
  }
  checkIntegrity(Producers, Consumers);

  for (Operation *C : Consumers)
    C->erase();
  for (Operation *P : Producers) {
    EXPECT_TRUE(P->use_empty());
    P->erase();
  }
}

TEST_F(UseListStressTest, BlockArgumentMutationSoup) {
  // Randomized stress over the block-side mutation API: addArgument /
  // eraseArgument / splitBefore / block erase, interleaved with consumers
  // that hold block arguments as operands, cross-checking every argument's
  // index, owner, and use list after each batch of steps.
  Rng R(0xB10CA65);
  Region Reg(Ctx);
  std::vector<Block *> Blocks;
  std::vector<Operation *> Consumers;
  Type F32 = Ctx.getFloatType(32);

  auto makeBlock = [&](unsigned NumArgs) {
    std::vector<Type> Tys(NumArgs, F32);
    Blocks.push_back(&Reg.emplaceBlock(Tys));
    return Blocks.back();
  };
  for (unsigned I = 0; I != 4; ++I)
    makeBlock(static_cast<unsigned>(R.below(4)));

  auto randomArg = [&]() -> Value {
    for (unsigned Try = 0; Try != 8; ++Try) {
      Block *B = Blocks[R.below(Blocks.size())];
      if (B->getNumArguments())
        return B->getArgument(
            static_cast<unsigned>(R.below(B->getNumArguments())));
    }
    return Value();
  };

  auto checkArgs = [&] {
    for (Block *B : Blocks) {
      for (unsigned A = 0; A != B->getNumArguments(); ++A) {
        Value V = B->getArgument(A);
        ASSERT_EQ(V.getIndex(), A);
        ASSERT_EQ(V.getOwnerBlock(), B);
        unsigned Seen = 0;
        for (OpOperand *Use = V.getFirstUse(); Use;
             Use = Use->getNextUse()) {
          ++Seen;
          ASSERT_EQ(Use->get(), V);
          ASSERT_NE(std::find(Consumers.begin(), Consumers.end(),
                              Use->getOwner()),
                    Consumers.end());
        }
        unsigned Expected = 0;
        for (Operation *C : Consumers)
          for (unsigned I = 0; I != C->getNumOperands(); ++I)
            if (C->getOperand(I) == V)
              ++Expected;
        ASSERT_EQ(Seen, Expected);
        ASSERT_EQ(V.getNumUses(), Expected);
      }
    }
  };

  for (unsigned Step = 0; Step != 3000; ++Step) {
    switch (R.below(7)) {
    case 0: { // new block with 0..2 arguments
      if (Blocks.size() < 24)
        makeBlock(static_cast<unsigned>(R.below(3)));
      break;
    }
    case 1: { // addArgument (possibly past inline capacity)
      Blocks[R.below(Blocks.size())]->addArgument(F32);
      break;
    }
    case 2: { // eraseArgument: first unused arg; survivors re-index
      Block *B = Blocks[R.below(Blocks.size())];
      for (unsigned A = 0; A != B->getNumArguments(); ++A)
        if (B->getArgument(A).use_empty()) {
          B->eraseArgument(A);
          break;
        }
      break;
    }
    case 3: { // new consumer holding random block arguments
      std::vector<Value> Ops;
      for (uint64_t I = 0, N = R.below(5); I != N; ++I)
        if (Value V = randomArg())
          Ops.push_back(V);
      Operation *C = makeConsumer(std::move(Ops));
      Blocks[R.below(Blocks.size())]->push_back(C);
      Consumers.push_back(C);
      break;
    }
    case 4: { // erase a consumer (recycles its arena slot)
      if (Consumers.empty())
        break;
      size_t Idx = R.below(Consumers.size());
      Consumers[Idx]->erase();
      Consumers.erase(Consumers.begin() + Idx);
      break;
    }
    case 5: { // splitBefore at a random position
      Block *B = Blocks[R.below(Blocks.size())];
      if (B->empty() || Blocks.size() >= 32)
        break;
      auto Pos = B->begin();
      std::advance(Pos, R.below(B->getNumOps()));
      Blocks.push_back(B->splitBefore(Pos));
      break;
    }
    case 6: { // erase a whole block (its args and ops die with it)
      if (Blocks.size() <= 1)
        break;
      size_t Idx = R.below(Blocks.size());
      Block *B = Blocks[Idx];
      // Drop every operand (in any block) referring to B's arguments.
      for (Operation *C : Consumers)
        for (unsigned I = C->getNumOperands(); I != 0; --I) {
          Value V = C->getOperand(I - 1);
          if (V.isBlockArgument() && V.getOwnerBlock() == B)
            C->eraseOperand(I - 1);
        }
      // Ops inside B are destroyed by the erase; stop tracking them.
      for (Operation &Op : *B)
        Consumers.erase(std::find(Consumers.begin(), Consumers.end(), &Op));
      B->erase();
      Blocks.erase(Blocks.begin() + Idx);
      break;
    }
    }
    if (Step % 211 == 0)
      checkArgs();
  }
  checkArgs();
  // Region teardown drops the remaining cross-block references itself.
}

TEST_F(UseListStressTest, EraseAndRecreateReusesPoisonedSlots) {
  // Create/erase in a tight loop so arena blocks are recycled many times;
  // any use-list pointer surviving an erase would hit poisoned memory.
  Rng R(42);
  Operation *P = makeProducer();
  for (unsigned Round = 0; Round != 2000; ++Round) {
    std::vector<Operation *> Batch;
    for (uint64_t I = 0, N = 1 + R.below(4); I != N; ++I)
      Batch.push_back(makeConsumer({P->getResult(0), P->getResult(1)}));
    EXPECT_EQ(P->getResult(0).getNumUses(), Batch.size());
    while (!Batch.empty()) {
      size_t Idx = R.below(Batch.size());
      Batch[Idx]->erase();
      Batch.erase(Batch.begin() + Idx);
    }
    EXPECT_TRUE(P->use_empty());
  }
  P->erase();
}

TEST_F(UseListStressTest, SetOperandsSelfAssignSafe) {
  // setOperands with values the op already holds (including duplicates).
  Operation *P = makeProducer();
  Operation *C =
      makeConsumer({P->getResult(0), P->getResult(1), P->getResult(0)});
  std::vector<Value> Current = C->getOperands().vec();
  C->setOperands(Current);
  ASSERT_EQ(C->getNumOperands(), 3u);
  EXPECT_EQ(C->getOperand(0), P->getResult(0));
  EXPECT_EQ(C->getOperand(1), P->getResult(1));
  EXPECT_EQ(C->getOperand(2), P->getResult(0));
  EXPECT_EQ(P->getResult(0).getNumUses(), 2u);
  EXPECT_EQ(P->getResult(1).getNumUses(), 1u);
  C->erase();
  P->erase();
}

} // namespace
