//===- UseListStressTest.cpp - use-list integrity over arena ops -------===//
///
/// Randomized stress over the operand-mutation API on arena-allocated
/// operations: addOperand / eraseOperand / setOperands /
/// replaceAllUsesWith / erase, interleaved, with full use-list
/// cross-checks after every step. Runs in the ASan CI job, where the
/// arena's freed-slot poisoning turns any stale-Value dereference into a
/// deterministic trap instead of a silent read of recycled memory.

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

using namespace irdl;

namespace {

/// Deterministic LCG so failures replay.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 17;
  }
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }

private:
  uint64_t State;
};

class UseListStressTest : public ::testing::Test {
protected:
  UseListStressTest() {
    Dialect *D = Ctx.getOrCreateDialect("stress");
    ProduceDef = D->addOp("produce");
    ConsumeDef = D->addOp("consume");
  }

  Operation *makeProducer() {
    OperationState S(Ctx, OperationName(ProduceDef));
    S.ResultTypes = {Ctx.getFloatType(32), Ctx.getIntegerType(32)};
    return Operation::create(S);
  }

  Operation *makeConsumer(std::vector<Value> Operands) {
    OperationState S(Ctx, OperationName(ConsumeDef));
    S.Operands = std::move(Operands);
    return Operation::create(S);
  }

  /// Walks every producer's use lists and checks they exactly mirror the
  /// consumers' operand lists.
  void checkIntegrity(const std::vector<Operation *> &Producers,
                      const std::vector<Operation *> &Consumers) {
    for (Operation *P : Producers) {
      for (unsigned R = 0; R != P->getNumResults(); ++R) {
        Value V = P->getResult(R);
        unsigned UsesSeen = 0;
        for (OpOperand *Use = V.getFirstUse(); Use;
             Use = Use->getNextUse()) {
          ++UsesSeen;
          Operation *Owner = Use->getOwner();
          ASSERT_NE(Owner, nullptr);
          ASSERT_EQ(Use->get(), V);
          // The owner must be a live consumer that really holds V.
          ASSERT_NE(std::find(Consumers.begin(), Consumers.end(), Owner),
                    Consumers.end());
          bool Holds = false;
          for (unsigned I = 0; I != Owner->getNumOperands(); ++I)
            if (Owner->getOperand(I) == V)
              Holds = true;
          ASSERT_TRUE(Holds);
        }
        // Count uses from the consumer side too.
        unsigned UsesExpected = 0;
        for (Operation *C : Consumers)
          for (unsigned I = 0; I != C->getNumOperands(); ++I)
            if (C->getOperand(I) == V)
              ++UsesExpected;
        ASSERT_EQ(UsesSeen, UsesExpected);
        ASSERT_EQ(V.getNumUses(), UsesExpected);
      }
    }
  }

  IRContext Ctx;
  OpDefinition *ProduceDef = nullptr;
  OpDefinition *ConsumeDef = nullptr;
};

TEST_F(UseListStressTest, RandomizedMutationSoup) {
  Rng R(0xD1CE5EED);
  std::vector<Operation *> Producers, Consumers;
  for (unsigned I = 0; I != 8; ++I)
    Producers.push_back(makeProducer());

  auto randomValue = [&] {
    Operation *P = Producers[R.below(Producers.size())];
    return P->getResult(static_cast<unsigned>(R.below(P->getNumResults())));
  };

  for (unsigned Step = 0; Step != 4000; ++Step) {
    switch (R.below(6)) {
    case 0: { // create a consumer with 0..5 operands
      std::vector<Value> Ops;
      for (uint64_t I = 0, N = R.below(6); I != N; ++I)
        Ops.push_back(randomValue());
      Consumers.push_back(makeConsumer(std::move(Ops)));
      break;
    }
    case 1: { // addOperand (possibly past inline capacity)
      if (Consumers.empty())
        break;
      Operation *C = Consumers[R.below(Consumers.size())];
      C->addOperand(randomValue());
      break;
    }
    case 2: { // eraseOperand
      if (Consumers.empty())
        break;
      Operation *C = Consumers[R.below(Consumers.size())];
      if (C->getNumOperands())
        C->eraseOperand(static_cast<unsigned>(
            R.below(C->getNumOperands())));
      break;
    }
    case 3: { // setOperands to a fresh random list
      if (Consumers.empty())
        break;
      Operation *C = Consumers[R.below(Consumers.size())];
      std::vector<Value> Ops;
      for (uint64_t I = 0, N = R.below(8); I != N; ++I)
        Ops.push_back(randomValue());
      C->setOperands(Ops);
      break;
    }
    case 4: { // replaceAllUsesWith on a producer
      Operation *From = Producers[R.below(Producers.size())];
      Operation *To = Producers[R.below(Producers.size())];
      if (From != To)
        From->replaceAllUsesWith(To->getResults());
      break;
    }
    case 5: { // erase a random consumer (recycles its arena block)
      if (Consumers.empty())
        break;
      size_t Idx = R.below(Consumers.size());
      Consumers[Idx]->erase();
      Consumers.erase(Consumers.begin() + Idx);
      break;
    }
    }
    if (Step % 257 == 0)
      checkIntegrity(Producers, Consumers);
  }
  checkIntegrity(Producers, Consumers);

  for (Operation *C : Consumers)
    C->erase();
  for (Operation *P : Producers) {
    EXPECT_TRUE(P->use_empty());
    P->erase();
  }
}

TEST_F(UseListStressTest, EraseAndRecreateReusesPoisonedSlots) {
  // Create/erase in a tight loop so arena blocks are recycled many times;
  // any use-list pointer surviving an erase would hit poisoned memory.
  Rng R(42);
  Operation *P = makeProducer();
  for (unsigned Round = 0; Round != 2000; ++Round) {
    std::vector<Operation *> Batch;
    for (uint64_t I = 0, N = 1 + R.below(4); I != N; ++I)
      Batch.push_back(makeConsumer({P->getResult(0), P->getResult(1)}));
    EXPECT_EQ(P->getResult(0).getNumUses(), Batch.size());
    while (!Batch.empty()) {
      size_t Idx = R.below(Batch.size());
      Batch[Idx]->erase();
      Batch.erase(Batch.begin() + Idx);
    }
    EXPECT_TRUE(P->use_empty());
  }
  P->erase();
}

TEST_F(UseListStressTest, SetOperandsSelfAssignSafe) {
  // setOperands with values the op already holds (including duplicates).
  Operation *P = makeProducer();
  Operation *C =
      makeConsumer({P->getResult(0), P->getResult(1), P->getResult(0)});
  std::vector<Value> Current = C->getOperands().vec();
  C->setOperands(Current);
  ASSERT_EQ(C->getNumOperands(), 3u);
  EXPECT_EQ(C->getOperand(0), P->getResult(0));
  EXPECT_EQ(C->getOperand(1), P->getResult(1));
  EXPECT_EQ(C->getOperand(2), P->getResult(0));
  EXPECT_EQ(P->getResult(0).getNumUses(), 2u);
  EXPECT_EQ(P->getResult(1).getNumUses(), 1u);
  C->erase();
  P->erase();
}

} // namespace
