//===- VerifierTest.cpp - Structural verification ----------------------===//

#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Region.h"
#include "ir/Verifier.h"
#include "ir/Block.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class VerifierTest : public ::testing::Test {
protected:
  VerifierTest() : Diags(&SrcMgr) {
    Dialect *D = Ctx.getOrCreateDialect("test");
    D->addOp("source");
    D->addOp("sink");
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  LogicalResult verify(OwningOpRef &Module) {
    VDiags.clear();
    return Module->verify(VDiags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  DiagnosticEngine VDiags;
};

TEST_F(VerifierTest, StraightLineCodeVerifies) {
  OwningOpRef M = parse(R"(
    %0 = "test.source"() : () -> (f32)
    "test.sink"(%0) : (f32) -> ()
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(M))) << VDiags.renderAll();
}

TEST_F(VerifierTest, UseBeforeDefInSameBlockFails) {
  // Build by hand: the parser would catch this via forward-ref typing, so
  // construct directly.
  OwningOpRef M = parse(R"(
    %0 = "test.source"() : () -> (f32)
    "test.sink"(%0) : (f32) -> ()
  )");
  ASSERT_TRUE(static_cast<bool>(M));
  Block &Body = M->getRegion(0).front();
  Operation &Source = Body.front();
  Operation &Sink = Body.back();
  // Move sink before source.
  Sink.removeFromBlock();
  Body.insert(Block::iterator(&Source), &Sink);
  EXPECT_TRUE(failed(verify(M)));
  EXPECT_NE(VDiags.renderAll().find("does not dominate"),
            std::string::npos);
}

TEST_F(VerifierTest, DominanceAcrossBlocks) {
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      %x = "test.source"() : () -> (f32)
      "std.cond_br"(%c)[^a, ^b] : (i1) -> ()
    ^a:
      "test.sink"(%x) : (f32) -> ()
      "std.return"() : () -> ()
    ^b:
      "std.return"() : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(M))) << VDiags.renderAll();
}

TEST_F(VerifierTest, NonDominatingUseAcrossBlocksFails) {
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      "std.cond_br"(%c)[^a, ^b] : (i1) -> ()
    ^a:
      %x = "test.source"() : () -> (f32)
      "std.br"()[^b] : () -> ()
    ^b:
      "test.sink"(%x) : (f32) -> ()
      "std.return"() : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(failed(verify(M)));
}

TEST_F(VerifierTest, ValuesVisibleInNestedRegions) {
  OwningOpRef M = parse(R"(
    %x = "test.source"() : () -> (f32)
    module {
      "test.sink"(%x) : (f32) -> ()
    }
  )");
  // Region capture: the nested module body uses an outer value.
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(M))) << VDiags.renderAll();
}

TEST_F(VerifierTest, TerminatorMustBeLast) {
  OwningOpRef M = parse(R"(
    std.func @f() {
      "std.return"() : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  // Append an op after the terminator.
  Block &Body = M->getRegion(0).front().front().getRegion(0).front();
  Dialect *D = Ctx.lookupDialect("test");
  OperationState S(Ctx, OperationName(D->lookupOp("source")));
  S.ResultTypes.push_back(Ctx.getFloatType(32));
  Body.push_back(Operation::create(S));
  EXPECT_TRUE(failed(verify(M)));
  EXPECT_NE(VDiags.renderAll().find("must be the last operation"),
            std::string::npos);
}

TEST_F(VerifierTest, MultiBlockRegionRequiresTerminators) {
  OwningOpRef M = parse(R"(
    std.func @f() {
      "std.br"()[^next] : () -> ()
    ^next:
      "std.return"() : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  ASSERT_TRUE(succeeded(verify(M))) << VDiags.renderAll();
  // Drop ^next's terminator: now the multi-block region is invalid.
  Region &Body = M->getRegion(0).front().front().getRegion(0);
  Body.back().back().erase();
  EXPECT_TRUE(failed(verify(M)));
}

TEST_F(VerifierTest, SuccessorCountChecked) {
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      "std.cond_br"(%c)[^a, ^b] : (i1) -> ()
    ^a:
      "std.return"() : () -> ()
    ^b:
      "std.return"() : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  Operation *CondBr =
      M->getRegion(0).front().front().getRegion(0).front().getTerminator();
  // Registered NumSuccessors == 2; break it.
  CondBr->setSuccessor(1, CondBr->getSuccessor(0));
  EXPECT_TRUE(succeeded(verify(M))); // Same block twice is fine.
}

TEST_F(VerifierTest, RegisteredVerifierRuns) {
  Dialect *D = Ctx.lookupDialect("test");
  OpDefinition *Strict = D->addOp("strict");
  Strict->setVerifier(
      [](Operation *Op, DiagnosticEngine &Diags) -> LogicalResult {
        if (Op->getAttr("required"))
          return success();
        Diags.emitError(Op->getLoc(), "missing 'required' attribute");
        return failure();
      });
  OwningOpRef M = parse(R"("test.strict"() : () -> ())");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(failed(verify(M)));
  M->getRegion(0).front().front().setAttr("required", Ctx.getUnitAttr());
  EXPECT_TRUE(succeeded(verify(M))) << VDiags.renderAll();
}

TEST_F(VerifierTest, DominanceInfoDirectQueries) {
  OwningOpRef M = parse(R"(
    std.func @f(%c: i1) {
      "std.cond_br"(%c)[^a, ^b] : (i1) -> ()
    ^a:
      "std.br"()[^join] : () -> ()
    ^b:
      "std.br"()[^join] : () -> ()
    ^join:
      "std.return"() : () -> ()
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  Region &Body = M->getRegion(0).front().front().getRegion(0);
  std::vector<Block *> Blocks;
  for (Block &B : Body)
    Blocks.push_back(&B);
  ASSERT_EQ(Blocks.size(), 4u);
  DominanceInfo Dom;
  EXPECT_TRUE(Dom.dominates(Blocks[0], Blocks[3]));
  EXPECT_TRUE(Dom.dominates(Blocks[0], Blocks[1]));
  EXPECT_FALSE(Dom.dominates(Blocks[1], Blocks[3]));
  EXPECT_FALSE(Dom.dominates(Blocks[2], Blocks[3]));
  EXPECT_TRUE(Dom.dominates(Blocks[3], Blocks[3]));
}

} // namespace
