//===- ParserErrorTest.cpp - IR parser diagnostics sweep ------------------===//
///
/// Parameterized sweep over malformed IR inputs: each must fail to parse
/// and produce a diagnostic containing the expected fragment (never a
/// crash, never a silent success).

#include "ir/Context.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

struct ErrorCase {
  const char *Name;
  const char *Source;
  const char *ExpectedFragment;
};

class ParserErrorTest : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ParserErrorTest, DiagnosesCleanly) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("test");
  D->addOp("source");
  D->addOp("sink");
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);

  OwningOpRef M =
      parseSourceString(Ctx, GetParam().Source, SrcMgr, Diags);
  EXPECT_FALSE(static_cast<bool>(M));
  EXPECT_TRUE(Diags.hadError());
  EXPECT_NE(Diags.renderAll().find(GetParam().ExpectedFragment),
            std::string::npos)
      << "diagnostics were:\n"
      << Diags.renderAll();
}

std::string caseName(const ::testing::TestParamInfo<ErrorCase> &Info) {
  return Info.param.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrorTest,
    ::testing::Values(
        ErrorCase{"UnknownOp", R"("zzz.op"() : () -> ())",
                  "unknown operation"},
        ErrorCase{"UnknownType",
                  R"(%0 = "test.source"() : () -> (!zzz.t))",
                  "unknown type"},
        ErrorCase{"UnknownAttr",
                  R"("test.sink"() {a = #zzz.a} : () -> ())",
                  "unknown attribute"},
        ErrorCase{"MissingSignature", R"("test.sink"())",
                  "expected ':' before op signature"},
        ErrorCase{"OperandCountMismatch",
                  R"(%0 = "test.source"() : () -> (f32)
                     "test.sink"(%0) : () -> ())",
                  "does not match signature"},
        ErrorCase{"UndefinedValue",
                  R"("test.sink"(%ghost) : (f32) -> ())",
                  "use of undefined value %ghost"},
        ErrorCase{"Redefinition",
                  R"(%0 = "test.source"() : () -> (f32)
                     %0 = "test.source"() : () -> (f32))",
                  "redefinition of value %0"},
        ErrorCase{"TypeMismatchAtUse",
                  R"(%0 = "test.source"() : () -> (f32)
                     "test.sink"(%0) : (i32) -> ())",
                  "has type f32 but is used as i32"},
        ErrorCase{"ForwardRefTypeMismatch",
                  R"(std.func @f() {
                       "test.sink"(%later) : (f32) -> ()
                       %later = "test.source"() : () -> (i32)
                       std.return
                     })",
                  "does not match forward uses"},
        ErrorCase{"UnboundResults",
                  R"("test.source"() : () -> (f32))",
                  "results must be bound"},
        ErrorCase{"BadResultCount",
                  R"(%r:2 = "test.source"() : () -> (f32))",
                  "1 results but 2 were bound"},
        ErrorCase{"UndefinedBlock",
                  R"(std.func @f() {
                       "std.br"()[^nowhere] : () -> ()
                     })",
                  "undefined block"},
        ErrorCase{"DuplicateBlockLabel",
                  R"(std.func @f() {
                       std.return
                     ^a:
                       std.return
                     ^a:
                       std.return
                     })",
                  "redefinition of block ^a"},
        ErrorCase{"UnterminatedRegion",
                  R"(std.func @f() { std.return)",
                  "unterminated region"},
        ErrorCase{"BadBlockArg",
                  R"(std.func @f() {
                       std.return
                     ^a(%x):
                       std.return
                     })",
                  "expected ':' after block argument"},
        ErrorCase{"BadAttrDict",
                  R"("test.sink"() {3 = 4} : () -> ())",
                  "expected attribute name"},
        ErrorCase{"BadFunctionType",
                  R"(%0 = "test.source"() : () -> ((i32 ->))",
                  "expected"},
        ErrorCase{"CustomOpWithoutSyntax",
                  R"(test.sink %x)", "no custom syntax"},
        ErrorCase{"BadIntegerWidth",
                  R"(%0 = "test.source"() : () -> (i0))",
                  "unknown type"},
        ErrorCase{"TrailingGarbageInFunc",
                  R"(std.func @f() -> {
                       std.return
                     })",
                  "expected type"}),
    caseName);

/// The self-reference case above actually parses (forward ref resolved by
/// its own definition) but must then fail verification; special-case it.
TEST(ParserErrorSpecial, SelfReferenceFailsVerification) {
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("test");
  D->addOp("pass");
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  OwningOpRef M = parseSourceString(
      Ctx, R"(%a = "test.pass"(%a) : (f32) -> (f32))", SrcMgr, Diags);
  if (!M) {
    // Rejected at parse time is fine too.
    SUCCEED();
    return;
  }
  DiagnosticEngine V;
  EXPECT_TRUE(failed(M->verify(V)));
}

TEST(ParserErrorSpecial, ErrorRecoveryLeaksNothing) {
  // Parse a batch of bad inputs back to back; the orphan-placeholder
  // cleanup must leave the context reusable (exercised under ASAN in the
  // full suite).
  IRContext Ctx;
  Dialect *D = Ctx.getOrCreateDialect("test");
  D->addOp("sink");
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  const char *BadInputs[] = {
      R"("test.sink"(%ghost) : (f32) -> ())",
      R"(std.func @f() { "std.br"()[^x] : () -> () })",
      R"(%a = )",
      R"(std.func @f(%x: f32) { "test.sink"(%y) : (f32) -> () })",
  };
  for (const char *Src : BadInputs) {
    OwningOpRef M = parseSourceString(Ctx, Src, SrcMgr, Diags);
    EXPECT_FALSE(static_cast<bool>(M));
  }
  // And a good one still parses.
  Diags.clear();
  OwningOpRef Good = parseSourceString(
      Ctx, R"(std.func @ok() { std.return })", SrcMgr, Diags);
  EXPECT_TRUE(static_cast<bool>(Good)) << Diags.renderAll();
}

} // namespace
