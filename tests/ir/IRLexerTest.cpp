//===- IRLexerTest.cpp - Tokenizer tests ----------------------------------===//

#include "ir/IRLexer.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

std::vector<IRToken> lexAll(std::string_view Src, DiagnosticEngine &Diags) {
  IRLexer Lex(Src, Diags);
  std::vector<IRToken> Tokens;
  while (!Lex.getToken().is(IRToken::Kind::Eof) &&
         !Lex.getToken().is(IRToken::Kind::Error)) {
    Tokens.push_back(Lex.getToken());
    Lex.lex();
  }
  Tokens.push_back(Lex.getToken());
  return Tokens;
}

TEST(IRLexerTest, Punctuation) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("( ) { } < > [ ] , : = . ? + * ! #", Diags);
  std::vector<IRToken::Kind> Kinds;
  for (const IRToken &T : Tokens)
    Kinds.push_back(T.K);
  using K = IRToken::Kind;
  EXPECT_EQ(Kinds, (std::vector<K>{
                       K::LParen, K::RParen, K::LBrace, K::RBrace, K::Less,
                       K::Greater, K::LSquare, K::RSquare, K::Comma,
                       K::Colon, K::Equal, K::Dot, K::Question, K::Plus,
                       K::Star, K::Bang, K::Hash, K::Eof}));
}

TEST(IRLexerTest, ArrowVsMinus) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("-> - -5", Diags);
  EXPECT_EQ(Tokens[0].K, IRToken::Kind::Arrow);
  EXPECT_EQ(Tokens[1].K, IRToken::Kind::Minus);
  EXPECT_EQ(Tokens[2].K, IRToken::Kind::Minus);
  EXPECT_EQ(Tokens[3].K, IRToken::Kind::Integer);
  EXPECT_EQ(Tokens[3].Spelling, "5");
}

TEST(IRLexerTest, Numbers) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("42 3.5 1e10 2.5e-3 7.", Diags);
  EXPECT_EQ(Tokens[0].K, IRToken::Kind::Integer);
  EXPECT_EQ(Tokens[1].K, IRToken::Kind::Float);
  EXPECT_EQ(Tokens[1].Spelling, "3.5");
  EXPECT_EQ(Tokens[2].K, IRToken::Kind::Float);
  EXPECT_EQ(Tokens[3].K, IRToken::Kind::Float);
  EXPECT_EQ(Tokens[3].Spelling, "2.5e-3");
  // "7." is integer followed by dot (dots need a trailing digit).
  EXPECT_EQ(Tokens[4].K, IRToken::Kind::Integer);
  EXPECT_EQ(Tokens[5].K, IRToken::Kind::Dot);
}

TEST(IRLexerTest, Identifiers) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("foo _bar baz123 f32", Diags);
  for (int I = 0; I < 4; ++I)
    EXPECT_EQ(Tokens[I].K, IRToken::Kind::Identifier);
  EXPECT_EQ(Tokens[0].Spelling, "foo");
  EXPECT_EQ(Tokens[1].Spelling, "_bar");
  EXPECT_TRUE(Tokens[3].isIdent("f32"));
}

TEST(IRLexerTest, SigilIdentifiers) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("%val %12 %5#2 ^bb0 @sym", Diags);
  EXPECT_EQ(Tokens[0].K, IRToken::Kind::PercentId);
  EXPECT_EQ(Tokens[0].Spelling, "val");
  EXPECT_EQ(Tokens[1].Spelling, "12");
  EXPECT_EQ(Tokens[2].Spelling, "5#2");
  EXPECT_EQ(Tokens[3].K, IRToken::Kind::CaretId);
  EXPECT_EQ(Tokens[3].Spelling, "bb0");
  EXPECT_EQ(Tokens[4].K, IRToken::Kind::AtId);
  EXPECT_EQ(Tokens[4].Spelling, "sym");
}

TEST(IRLexerTest, Strings) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll(R"("plain" "with \"quotes\"" "nl\n")", Diags);
  EXPECT_EQ(Tokens[0].K, IRToken::Kind::String);
  EXPECT_EQ(Tokens[0].Spelling, "plain");
  EXPECT_EQ(Tokens[1].Spelling, "with \"quotes\"");
  EXPECT_EQ(Tokens[2].Spelling, "nl\n");
}

TEST(IRLexerTest, UnterminatedString) {
  DiagnosticEngine Diags;
  IRLexer Lex("\"oops", Diags);
  EXPECT_EQ(Lex.getToken().K, IRToken::Kind::Error);
  EXPECT_TRUE(Diags.hadError());
}

TEST(IRLexerTest, InvalidEscape) {
  DiagnosticEngine Diags;
  IRLexer Lex(R"("bad\q")", Diags);
  EXPECT_EQ(Lex.getToken().K, IRToken::Kind::Error);
}

TEST(IRLexerTest, Comments) {
  DiagnosticEngine Diags;
  auto Tokens = lexAll("a // comment until eol\nb", Diags);
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Spelling, "a");
  EXPECT_EQ(Tokens[1].Spelling, "b");
}

TEST(IRLexerTest, UnexpectedCharacter) {
  DiagnosticEngine Diags;
  IRLexer Lex("`", Diags);
  EXPECT_EQ(Lex.getToken().K, IRToken::Kind::Error);
  EXPECT_TRUE(Diags.hadError());
}

TEST(IRLexerTest, LocationsPointIntoSource) {
  DiagnosticEngine Diags;
  std::string Src = "abc def";
  IRLexer Lex(Src, Diags);
  EXPECT_EQ(Lex.getToken().Loc.getPointer(), Src.data());
  Lex.lex();
  EXPECT_EQ(Lex.getToken().Loc.getPointer(), Src.data() + 4);
}

TEST(IRLexerTest, EmptyInput) {
  DiagnosticEngine Diags;
  IRLexer Lex("", Diags);
  EXPECT_TRUE(Lex.getToken().is(IRToken::Kind::Eof));
  // Lexing past EOF stays at EOF.
  Lex.lex();
  EXPECT_TRUE(Lex.getToken().is(IRToken::Kind::Eof));
}

} // namespace
