//===- BuiltinOpsTest.cpp - builtin/std op semantics --------------------===//

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class BuiltinOpsTest : public ::testing::Test {
protected:
  BuiltinOpsTest() : Diags(&SrcMgr) {}

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  LogicalResult verify(OwningOpRef &M) {
    VDiags.clear();
    return M->verify(VDiags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  DiagnosticEngine VDiags;
};

TEST_F(BuiltinOpsTest, FuncParsesAndVerifies) {
  OwningOpRef M = parse(R"(
    std.func @norm(%a: f32, %b: f32) -> f32 {
      %p = std.mulf %a, %b : f32
      std.return %p : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(M))) << VDiags.renderAll();

  Operation &Func = M->getRegion(0).front().front();
  EXPECT_EQ(Func.getName().str(), "std.func");
  EXPECT_EQ(Func.getAttr("sym_name").getParams()[0].getString(), "norm");
  Type FT = Func.getAttr("function_type").getParams()[0].getType();
  EXPECT_EQ(FT, Ctx.getFunctionType(
                    {Ctx.getFloatType(32), Ctx.getFloatType(32)},
                    {Ctx.getFloatType(32)}));
}

TEST_F(BuiltinOpsTest, FuncPrintsCustomSyntax) {
  OwningOpRef M = parse(R"(
    std.func @id(%a: f32) -> f32 {
      std.return %a : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  std::string Text = printOpToString(M.get());
  EXPECT_NE(Text.find("std.func @id(%0: f32) -> f32 {"), std::string::npos);
  EXPECT_NE(Text.find("std.return %0 : f32"), std::string::npos);
}

TEST_F(BuiltinOpsTest, ReturnTypeMismatchCaughtByFuncVerifier) {
  OwningOpRef M = parse(R"(
    std.func @bad(%a: i32) -> i32 {
      std.return %a : i32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  ASSERT_TRUE(succeeded(verify(M)));

  // Break it: change the declared result type.
  Operation &Func = M->getRegion(0).front().front();
  Func.setAttr("function_type",
               Ctx.getTypeAttr(Ctx.getFunctionType(
                   {Ctx.getIntegerType(32)}, {Ctx.getFloatType(32)})));
  EXPECT_TRUE(failed(verify(M)));
  EXPECT_NE(VDiags.renderAll().find("does not match function result type"),
            std::string::npos);
}

TEST_F(BuiltinOpsTest, MulfRequiresMatchingFloatTypes) {
  OwningOpRef M = parse(R"(
    std.func @bad(%a: i32) -> i32 {
      std.return %a : i32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M));
  // Build a mulf over integers by hand (the custom parser would reject the
  // types only at verification).
  Block &Body = M->getRegion(0).front().front().getRegion(0).front();
  Value Arg = Body.getArgument(0);
  OperationState S(Ctx, Ctx.resolveOpDef("std.mulf"));
  S.Operands = {Arg, Arg};
  S.ResultTypes = {Arg.getType()};
  Body.push_front(Operation::create(S));
  EXPECT_TRUE(failed(verify(M)));
  EXPECT_NE(VDiags.renderAll().find("floating-point"), std::string::npos);
}

TEST_F(BuiltinOpsTest, ConstantTypesChecked) {
  OwningOpRef M = parse(R"(
    %c = std.constant 2.5 : f32
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(M))) << VDiags.renderAll();
  Operation &C = M->getRegion(0).front().front();
  EXPECT_EQ(C.getResult(0).getType(), Ctx.getFloatType(32));

  // Mismatched result type trips the verifier.
  C.getResult(0).setType(Ctx.getFloatType(64));
  EXPECT_TRUE(failed(verify(M)));
}

TEST_F(BuiltinOpsTest, IntegerConstant) {
  OwningOpRef M = parse(R"(%c = std.constant 42 : i32)");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(M))) << VDiags.renderAll();
  Operation &C = M->getRegion(0).front().front();
  EXPECT_EQ(C.getResult(0).getType(), Ctx.getIntegerType(32));
  EXPECT_EQ(C.getAttr("value"), Ctx.getIntegerAttr(42, 32));
}

TEST_F(BuiltinOpsTest, ModuleVerifier) {
  OwningOpRef M = parse("module {\n}");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(M))) << VDiags.renderAll();
  EXPECT_EQ(M->getName().str(), "builtin.module");
}

TEST_F(BuiltinOpsTest, ReturnIsTerminator) {
  const OpDefinition *Def = Ctx.resolveOpDef("std.return");
  ASSERT_NE(Def, nullptr);
  EXPECT_TRUE(Def->isTerminator());
  EXPECT_EQ(Def->getNumSuccessors(), 0u);
}

TEST_F(BuiltinOpsTest, VoidFunction) {
  OwningOpRef M = parse(R"(
    std.func @nothing() {
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  EXPECT_TRUE(succeeded(verify(M))) << VDiags.renderAll();
  std::string Text = printOpToString(M.get());
  EXPECT_NE(Text.find("std.func @nothing() {"), std::string::npos);
}

TEST_F(BuiltinOpsTest, FuncRequiresAttrs) {
  OperationState S(Ctx, Ctx.resolveOpDef("std.func"));
  S.addRegion();
  Operation *Func = Operation::create(S);
  DiagnosticEngine V;
  EXPECT_TRUE(failed(Func->verify(V)));
  EXPECT_NE(V.renderAll().find("sym_name"), std::string::npos);
  Func->destroy();
}

} // namespace
