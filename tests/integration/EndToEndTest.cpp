//===- EndToEndTest.cpp - Cross-module integration -----------------------===//
///
/// The complete paper story as one test suite: load a dialect from IRDL
/// text, parse IR that uses it (custom formats included), verify it with
/// the generated verifiers, transform it with a pass pipeline, clone it,
/// analyze it, and round-trip everything through text.

#include "analysis/DialectStatistics.h"
#include "ir/Block.h"
#include "ir/Cloning.h"
#include "ir/IRParser.h"
#include "ir/Pass.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

struct ConormPattern : RewritePattern {
  ConormPattern() : RewritePattern("std.mulf") {}

  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    Operation *L = Op->getOperand(0).getDefiningOp();
    Operation *R = Op->getOperand(1).getDefiningOp();
    auto IsNorm = [](Operation *N) {
      return N && N->getName().str() == "cmath.norm";
    };
    if (!IsNorm(L) || !IsNorm(R) ||
        L->getOperand(0).getType() != R->getOperand(0).getType())
      return failure();
    IRContext *Ctx = Rewriter.getContext();
    OperationState MulState(*Ctx, Ctx->resolveOpDef("cmath.mul"), Op->getLoc());
    MulState.Operands = {L->getOperand(0), R->getOperand(0)};
    MulState.ResultTypes = {L->getOperand(0).getType()};
    Operation *Mul = Rewriter.createOp(MulState);
    OperationState NormState(*Ctx, Ctx->resolveOpDef("cmath.norm"),
                             Op->getLoc());
    NormState.Operands = {Mul->getResult(0)};
    NormState.ResultTypes = {Op->getResult(0).getType()};
    Operation *Norm = Rewriter.createOp(NormState);
    Rewriter.replaceOp(Op, {Norm->getResult(0)});
    return success();
  }
};

class EndToEndTest : public ::testing::Test {
protected:
  EndToEndTest() : Diags(&SrcMgr) {
    Module = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                   "/cmath.irdl",
                          SrcMgr, Diags);
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  std::unique_ptr<IRDLModule> Module;
};

TEST_F(EndToEndTest, Listing1OptimizationPipeline) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  // Listing 1a.
  OwningOpRef M = parse(R"(
    std.func @conorm(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>)
        -> f32 {
      %norm_p = cmath.norm %p : f32
      %norm_q = cmath.norm %q : f32
      %pq = std.mulf %norm_p, %norm_q : f32
      std.return %pq : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();

  // A pipeline with the peephole followed by DCE, verified between
  // passes.
  PassManager PM(&Ctx);
  auto Patterns = std::make_shared<RewritePatternSet>(&Ctx);
  Patterns->add<ConormPattern>();
  PM.addPass<GreedyRewritePass>("conorm", Patterns);
  PM.addPass<DeadCodeEliminationPass>(std::vector<std::string>{},
                                      /*AssumeRegisteredOpsPure=*/true);
  DiagnosticEngine PDiags;
  PassPipelineStatistics Stats;
  ASSERT_TRUE(succeeded(PM.run(M.get(), PDiags, &Stats)))
      << PDiags.renderAll();
  EXPECT_EQ(Stats.PassesRun, 2u);

  // Listing 1b: exactly one mul and one norm remain, in that order.
  std::string Text = printOpToString(M.get());
  EXPECT_NE(Text.find("cmath.mul %0, %1 : f32"), std::string::npos)
      << Text;
  size_t MulPos = Text.find("cmath.mul");
  size_t NormPos = Text.find("cmath.norm");
  EXPECT_NE(MulPos, std::string::npos);
  EXPECT_NE(NormPos, std::string::npos);
  EXPECT_LT(MulPos, NormPos);
  EXPECT_EQ(Text.find("cmath.norm", NormPos + 1), std::string::npos);
  EXPECT_EQ(Text.find("std.mulf"), std::string::npos);
}

TEST_F(EndToEndTest, CloneThenTransformLeavesOriginalIntact) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @conorm(%p: !cmath.complex<f64>, %q: !cmath.complex<f64>)
        -> f64 {
      %np = cmath.norm %p : f64
      %nq = cmath.norm %q : f64
      %r = std.mulf %np, %nq : f64
      std.return %r : f64
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  Operation &Func = M->getRegion(0).front().front();
  Operation *Clone = cloneOp(&Func);
  Clone->setAttr("sym_name", Ctx.getStringAttr("conorm_opt"));
  M->getRegion(0).front().push_back(Clone);

  // Optimize only the clone.
  RewritePatternSet Patterns(&Ctx);
  Patterns.add<ConormPattern>();
  applyPatternsGreedily(Clone, Patterns);
  eraseDeadOps(Clone, {"cmath.norm", "cmath.mul"});

  DiagnosticEngine V;
  ASSERT_TRUE(succeeded(M->verify(V))) << V.renderAll();

  std::string Text = printOpToString(M.get());
  // The original still contains std.mulf; the clone does not.
  size_t Original = Text.find("@conorm(");
  size_t Optimized = Text.find("@conorm_opt(");
  ASSERT_NE(Original, std::string::npos);
  ASSERT_NE(Optimized, std::string::npos);
  EXPECT_NE(Text.find("std.mulf", Original), std::string::npos);
  EXPECT_EQ(Text.find("std.mulf", Optimized), std::string::npos);
}

TEST_F(EndToEndTest, AnalysisSeesTheLoadedDialect) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  CorpusStatistics Stats = CorpusStatistics::compute(Module->Dialects);
  const DialectStatistics *Cmath = Stats.lookup("cmath");
  ASSERT_NE(Cmath, nullptr);
  EXPECT_EQ(Cmath->numOps(), 7u);
  EXPECT_EQ(Cmath->numTypes(), 1u);
  // Everything in cmath is pure IRDL.
  auto Local = Stats.opLocalConstraintExpressibility();
  EXPECT_EQ(Local.NeedsCpp, 0u);
  auto Verifiers = Stats.opVerifierExpressibility();
  EXPECT_EQ(Verifiers.NeedsCpp, 0u);
}

TEST_F(EndToEndTest, TextRoundTripAfterTransformation) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>)
        -> f32 {
      %np = cmath.norm %p : f32
      %nq = cmath.norm %q : f32
      %r = std.mulf %np, %nq : f32
      std.return %r : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  RewritePatternSet Patterns(&Ctx);
  Patterns.add<ConormPattern>();
  applyPatternsGreedily(M.get(), Patterns);
  eraseDeadOps(M.get(), {"cmath.norm", "cmath.mul"});

  std::string Once = printOpToString(M.get());
  OwningOpRef M2 = parse(Once);
  ASSERT_TRUE(static_cast<bool>(M2)) << Once << "\n" << Diags.renderAll();
  EXPECT_EQ(printOpToString(M2.get()), Once);
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M2->verify(V))) << V.renderAll();
}

TEST_F(EndToEndTest, SecondDialectCoexists) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  // Load arith alongside cmath in the same context and mix both in one
  // function.
  auto Arith = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) +
                                     "/arith.irdl",
                            SrcMgr, Diags);
  ASSERT_NE(Arith, nullptr) << Diags.renderAll();

  OwningOpRef M = parse(R"(
    std.func @mixed(%p: !cmath.complex<f32>) -> f32 {
      %n = cmath.norm %p : f32
      %d = "arith.mulf"(%n, %n) {fm = arith.fastmath.fast}
          : (f32, f32) -> (f32)
      std.return %d : f32
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();
}

} // namespace
