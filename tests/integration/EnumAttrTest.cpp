//===- EnumAttrTest.cpp - Enum constructors as op attributes -------------===//
///
/// Enums (Section 4.8) appear in two roles: as type/attribute parameters
/// (raw EnumVal parameter values) and as operation attributes (wrapped in
/// the builtin.enum attribute). These tests cover the attribute role:
/// parsing `arith.fastmath.fast` in attribute position, printing it back,
/// and constraint checking against enum / enum-constructor constraints.

#include "ir/Block.h"
#include "ir/Context.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

class EnumAttrTest : public ::testing::Test {
protected:
  EnumAttrTest() : Diags(&SrcMgr) {
    Module = loadIRDL(Ctx, R"(
      Dialect e {
        Enum rounding { nearest, up, down }
        Operation round {
          Operands (x: !f32)
          Results (r: !f32)
          Attributes (mode: rounding)
        }
        Operation round_up_only {
          Operands (x: !f32)
          Results (r: !f32)
          Attributes (mode: rounding.up)
        }
      }
    )",
                      SrcMgr, Diags);
  }

  OwningOpRef parse(std::string_view Src) {
    return parseSourceString(Ctx, Src, SrcMgr, Diags);
  }

  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags;
  std::unique_ptr<IRDLModule> Module;
};

TEST_F(EnumAttrTest, GetEnumAttrIsUniqued) {
  EnumDef *R = Ctx.resolveEnumDef("e.rounding");
  ASSERT_NE(R, nullptr);
  Attribute A = Ctx.getEnumAttr(EnumVal{R, 1});
  Attribute B = Ctx.getEnumAttr(EnumVal{R, 1});
  Attribute C = Ctx.getEnumAttr(EnumVal{R, 2});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(A.str(), "e.rounding.up");
}

TEST_F(EnumAttrTest, ParsePrintRoundTrip) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%x: f32) {
      %r = "e.round"(%x) {mode = e.rounding.nearest} : (f32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(M->verify(V))) << V.renderAll();

  std::string Text = printOpToString(M.get());
  EXPECT_NE(Text.find("mode = e.rounding.nearest"), std::string::npos)
      << Text;
  OwningOpRef M2 = parse(Text);
  ASSERT_TRUE(static_cast<bool>(M2)) << Text << "\n" << Diags.renderAll();
  EXPECT_EQ(printOpToString(M2.get()), Text);
}

TEST_F(EnumAttrTest, EnumKindConstraintChecksTheEnum) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  // A different enum's constructor is rejected.
  DiagnosticEngine LocalDiags(&SrcMgr);
  auto M2 = loadIRDL(Ctx, "Dialect other { Enum shade { light, dark } }",
                     SrcMgr, LocalDiags);
  ASSERT_NE(M2, nullptr) << LocalDiags.renderAll();

  OwningOpRef M = parse(R"(
    std.func @f(%x: f32) {
      %r = "e.round"(%x) {mode = other.shade.dark} : (f32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(failed(M->verify(V)));
  EXPECT_NE(V.renderAll().find("attribute 'mode'"), std::string::npos);

  // An integer attribute is rejected too.
  OwningOpRef M3 = parse(R"(
    std.func @f(%x: f32) {
      %r = "e.round"(%x) {mode = 1 : i32} : (f32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(M3)) << Diags.renderAll();
  DiagnosticEngine V3;
  EXPECT_TRUE(failed(M3->verify(V3)));
}

TEST_F(EnumAttrTest, EnumConstructorConstraintPinsOneCase) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef Good = parse(R"(
    std.func @f(%x: f32) {
      %r = "e.round_up_only"(%x) {mode = e.rounding.up} : (f32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Good)) << Diags.renderAll();
  DiagnosticEngine V;
  EXPECT_TRUE(succeeded(Good->verify(V))) << V.renderAll();

  OwningOpRef Bad = parse(R"(
    std.func @f(%x: f32) {
      %r = "e.round_up_only"(%x) {mode = e.rounding.down} : (f32) -> (f32)
      std.return
    }
  )");
  ASSERT_TRUE(static_cast<bool>(Bad)) << Diags.renderAll();
  DiagnosticEngine V2;
  EXPECT_TRUE(failed(Bad->verify(V2)));
}

TEST_F(EnumAttrTest, UnknownCaseDiagnosedAtParse) {
  ASSERT_NE(Module, nullptr) << Diags.renderAll();
  OwningOpRef M = parse(R"(
    std.func @f(%x: f32) {
      %r = "e.round"(%x) {mode = e.rounding.sideways} : (f32) -> (f32)
      std.return
    }
  )");
  EXPECT_FALSE(static_cast<bool>(M));
  EXPECT_NE(Diags.renderAll().find("not a constructor"),
            std::string::npos);
}

TEST_F(EnumAttrTest, DottedTypeStillParsesInAttrPosition) {
  // A dotted path that is NOT an enum falls back to a type attribute.
  DiagnosticEngine LocalDiags(&SrcMgr);
  auto M2 = loadIRDL(Ctx, R"(
    Dialect t2 { Type thing { Parameters (x: !AnyType) } }
  )",
                     SrcMgr, LocalDiags);
  ASSERT_NE(M2, nullptr) << LocalDiags.renderAll();
  DiagnosticEngine ADiags;
  Attribute A = parseAttrString(Ctx, "!t2.thing<f32>", ADiags);
  ASSERT_TRUE(static_cast<bool>(A)) << ADiags.renderAll();
  EXPECT_EQ(A.getDef(), Ctx.getTypeAttrDef());
  // Bare (bang-less) dotted paths work as type attrs too.
  Attribute B = parseAttrString(Ctx, "t2.thing<f32>", ADiags);
  ASSERT_TRUE(static_cast<bool>(B)) << ADiags.renderAll();
  EXPECT_EQ(A, B);
}

} // namespace
