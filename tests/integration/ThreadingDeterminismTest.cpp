//===- ThreadingDeterminismTest.cpp - MT determinism over the corpus ----===//
///
/// For every dialect of the synthetic evaluation corpus, synthesizes a
/// module and verifies it with --mt=1 and --mt=8 semantics: the verdict
/// and the rendered diagnostic stream must be identical. This is the
/// broad-coverage version of ParallelVerifierTest — the synthesized
/// modules hit every parameter kind, nested regions, and ops that fail
/// their IRDL constraints, so both the success and failure replay paths
/// are exercised across 28 real dialect profiles.

#include "corpus/Corpus.h"
#include "corpus/ModuleSynthesizer.h"
#include "ir/Block.h"
#include "ir/Region.h"
#include "ir/Verifier.h"
#include "support/Statistic.h"
#include "support/Threading.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

using namespace irdl;

namespace {

TEST(ThreadingDeterminismTest, CorpusVerificationMatchesSequential) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  CorpusLoadResult Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(Corpus)) << Diags.renderAll();
  ASSERT_EQ(Corpus.AnalysisDialects.size(), 28u);

  unsigned Verified = 0;
  for (const auto &Spec : Corpus.AnalysisDialects) {
    OwningOpRef M = synthesizeModule(Ctx, *Spec);
    ASSERT_TRUE(static_cast<bool>(M)) << Spec->Name;

    setGlobalThreadCount(1);
    DiagnosticEngine Seq(&SrcMgr);
    bool SeqOk = succeeded(M->verify(Seq));

    setGlobalThreadCount(8);
    DiagnosticEngine Par(&SrcMgr);
    bool ParOk = succeeded(M->verify(Par));

    EXPECT_EQ(SeqOk, ParOk) << "verdict diverged for " << Spec->Name;
    EXPECT_EQ(Seq.renderAll(), Par.renderAll())
        << "diagnostics diverged for " << Spec->Name;
    ++Verified;
  }
  setGlobalThreadCount(0);
  EXPECT_EQ(Verified, 28u);
}

TEST(ThreadingDeterminismTest, RepeatedParallelVerifyIsStable) {
  // The same module verified repeatedly under the same thread count must
  // render the same stream every time (no run-to-run nondeterminism).
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  CorpusLoadResult Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(Corpus)) << Diags.renderAll();

  const DialectSpec &Spec = *Corpus.AnalysisDialects.front();
  OwningOpRef M = synthesizeModule(Ctx, Spec);
  ASSERT_TRUE(static_cast<bool>(M));

  setGlobalThreadCount(8);
  std::string First;
  for (int I = 0; I != 5; ++I) {
    DiagnosticEngine VDiags(&SrcMgr);
    (void)M->verify(VDiags);
    std::string Out = VDiags.renderAll();
    if (I == 0)
      First = Out;
    else
      EXPECT_EQ(Out, First) << "iteration " << I;
  }
  setGlobalThreadCount(0);
}

TEST(ThreadingDeterminismTest, ReplayOrderingAcrossEpochs) {
  // The serving path (src/server) pins every streamed chunk to the epoch
  // that was current at VERIFY_BEGIN, hands each worker a private
  // DiagnosticEngine, and replays them in chunk order at VERIFY_END.
  // Workers finish in arbitrary order; the replayed stream must come out
  // in submission order regardless — including when consecutive chunks
  // verified against different epochs (so their diagnostics were
  // produced by engines with different SourceMgrs).
  constexpr unsigned NumChunks = 16;
  std::vector<DiagnosticEngine> Engines(NumChunks);
  std::vector<std::thread> Workers;
  // Reverse-staggered completion: chunk 15 finishes first, chunk 0 last.
  for (unsigned I = 0; I != NumChunks; ++I)
    Workers.emplace_back([&Engines, I]() {
      std::this_thread::sleep_for(
          std::chrono::microseconds((NumChunks - I) * 100));
      Engines[I]
          .emitError("chunk " + std::to_string(I) + " epoch " +
                     std::to_string(I % 2 ? 2 : 3))
          .attachNote(SMLoc(), "from epoch-pinned engine");
    });
  for (std::thread &W : Workers)
    W.join();

  DiagnosticEngine Sink;
  for (const DiagnosticEngine &E : Engines)
    Sink.replayAll(E);

  ASSERT_EQ(Sink.getDiagnostics().size(), NumChunks);
  std::string Expected;
  for (unsigned I = 0; I != NumChunks; ++I)
    Expected += "error: chunk " + std::to_string(I) + " epoch " +
                std::to_string(I % 2 ? 2 : 3) +
                "\nnote: from epoch-pinned engine\n";
  EXPECT_EQ(Sink.renderAll(), Expected);
  EXPECT_EQ(Sink.getNumErrors(), NumChunks);
}

TEST(ThreadingDeterminismTest, IncrementalVerifyMatchesSequential) {
  // verifyOpsIncremental is the chunk driver behind the serve stream:
  // the ops of one chunk verified in parallel with per-op engines, then
  // replayed in op order with fail-fast. Its verdict and stream must
  // match the sequential loop for every corpus dialect.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  CorpusLoadResult Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(Corpus)) << Diags.renderAll();

  for (const auto &Spec : Corpus.AnalysisDialects) {
    OwningOpRef M = synthesizeModule(Ctx, *Spec);
    ASSERT_TRUE(static_cast<bool>(M)) << Spec->Name;
    std::vector<Operation *> Ops;
    for (Operation &Op : M->getRegion(0).front())
      Ops.push_back(&Op);

    setGlobalThreadCount(1);
    DiagnosticEngine Seq(&SrcMgr);
    bool SeqOk = succeeded(verifyOpsIncremental(Ops, Seq));

    setGlobalThreadCount(8);
    DiagnosticEngine Par(&SrcMgr);
    bool ParOk = succeeded(verifyOpsIncremental(Ops, Par));

    EXPECT_EQ(SeqOk, ParOk) << "verdict diverged for " << Spec->Name;
    EXPECT_EQ(Seq.renderAll(), Par.renderAll())
        << "diagnostics diverged for " << Spec->Name;
  }
  setGlobalThreadCount(0);
}

/// Extracts the "group.name" row sequence of a rendered --stats table,
/// dropping the values (which legitimately differ between thread
/// counts: inline vs pool loops).
static std::vector<std::string> statRowKeys(const std::string &Table) {
  std::vector<std::string> Keys;
  std::istringstream In(Table);
  std::string Line;
  while (std::getline(In, Line)) {
    // Row shape: "  <value> <group>.<name> - <description>".
    std::istringstream Row(Line);
    std::string Value, Key;
    if ((Row >> Value >> Key) && Key.find('.') != std::string::npos)
      Keys.push_back(Key);
  }
  return Keys;
}

TEST(ThreadingDeterminismTest, StatsOrderingMatchesAcrossThreadCounts) {
  // The statistics registry renders sorted by (group, name), so the
  // --stats row ordering must be byte-identical at --mt=1 and --mt=8
  // even though worker threads bump the counters in different orders.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  CorpusLoadResult Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(Corpus)) << Diags.renderAll();

  const DialectSpec &Spec = *Corpus.AnalysisDialects.front();
  OwningOpRef M = synthesizeModule(Ctx, Spec);
  ASSERT_TRUE(static_cast<bool>(M));

  auto RunAt = [&](unsigned Threads) {
    StatisticRegistry::instance().resetAll();
    setGlobalThreadCount(Threads);
    DiagnosticEngine VDiags(&SrcMgr);
    (void)M->verify(VDiags);
    return StatisticRegistry::instance().renderTable(/*IncludeZero=*/true);
  };
  std::vector<std::string> Seq = statRowKeys(RunAt(1));
  std::vector<std::string> Par = statRowKeys(RunAt(8));
  setGlobalThreadCount(0);

  ASSERT_FALSE(Seq.empty());
  EXPECT_EQ(Seq, Par);
  EXPECT_TRUE(std::is_sorted(Seq.begin(), Seq.end()));
}

} // namespace
