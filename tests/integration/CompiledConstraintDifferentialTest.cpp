//===- CompiledConstraintDifferentialTest.cpp - Engine equivalence ------===//
///
/// Differential suite for the compiled constraint engine: every dialect
/// of the 28-profile synthetic corpus plus the five bundled .irdl files,
/// with both valid synthesized modules and mutated-invalid variants,
/// verified through the compiled programs and through the tree
/// interpreter (the reference oracle). The verdict and the rendered
/// diagnostic stream must be byte-identical, sequentially (--mt=1) and
/// under the parallel verifier (--mt=8) — the memo cache and dispatch
/// tables must be invisible except in speed.

#include "corpus/Corpus.h"
#include "corpus/ModuleSynthesizer.h"
#include "ir/Block.h"
#include "ir/Region.h"
#include "ir/Verifier.h"
#include "irdl/ConstraintCompiler.h"
#include "irdl/IRDL.h"
#include "support/Threading.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

/// Restores engine + thread-count globals even when an assertion bails.
struct GlobalsGuard {
  ~GlobalsGuard() {
    setCompiledConstraintsEnabled(true);
    setGlobalThreadCount(0);
  }
};

/// Verifies \p M through both engines at --mt=1 and --mt=8 and expects
/// identical verdicts and byte-identical diagnostics.
void expectEnginesAgree(Operation *M, SourceMgr &SrcMgr,
                        const std::string &Label) {
  for (unsigned MT : {1u, 8u}) {
    setGlobalThreadCount(MT);

    setCompiledConstraintsEnabled(false);
    DiagnosticEngine TreeDiags(&SrcMgr);
    bool TreeOk = succeeded(M->verify(TreeDiags));

    setCompiledConstraintsEnabled(true);
    DiagnosticEngine ProgDiags(&SrcMgr);
    bool ProgOk = succeeded(M->verify(ProgDiags));

    EXPECT_EQ(TreeOk, ProgOk)
        << "verdict diverged for " << Label << " at --mt=" << MT;
    EXPECT_EQ(TreeDiags.renderAll(), ProgDiags.renderAll())
        << "diagnostics diverged for " << Label << " at --mt=" << MT;
  }
}

/// Invalidates \p M in-place: drops the first attribute of every op that
/// carries one (missing required attributes fail verification), so the
/// failure replay path is compared too. Returns how many ops changed.
unsigned mutateDropAttributes(Operation *M) {
  unsigned Mutated = 0;
  M->walk([&](Operation *Op) {
    if (!Op->getAttrs().empty()) {
      Op->removeAttr(Op->getAttrs().begin()->Name);
      ++Mutated;
    }
  });
  return Mutated;
}

TEST(CompiledConstraintDifferentialTest, CorpusDialectsAgree) {
  GlobalsGuard Guard;
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  CorpusLoadResult Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(Corpus)) << Diags.renderAll();
  ASSERT_EQ(Corpus.AnalysisDialects.size(), 28u);

  for (const auto &Spec : Corpus.AnalysisDialects) {
    OwningOpRef M = synthesizeModule(Ctx, *Spec);
    ASSERT_TRUE(static_cast<bool>(M)) << Spec->Name;
    expectEnginesAgree(M.get(), SrcMgr, Spec->Name);
  }
}

TEST(CompiledConstraintDifferentialTest, MutatedCorpusModulesAgree) {
  GlobalsGuard Guard;
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  CorpusLoadResult Corpus = loadSyntheticCorpus(Ctx, SrcMgr, Diags);
  ASSERT_TRUE(static_cast<bool>(Corpus)) << Diags.renderAll();

  unsigned TotalMutations = 0;
  for (const auto &Spec : Corpus.AnalysisDialects) {
    ModuleSynthOptions Opts;
    Opts.Seed = 7;
    OwningOpRef M = synthesizeModule(Ctx, *Spec, Opts);
    ASSERT_TRUE(static_cast<bool>(M)) << Spec->Name;
    TotalMutations += mutateDropAttributes(M.get());
    expectEnginesAgree(M.get(), SrcMgr, Spec->Name + " (mutated)");
  }
  // The corpus profiles carry op attributes; the mutation must have bitten.
  EXPECT_GT(TotalMutations, 0u);
}

class BundledDialectDifferentialTest
    : public ::testing::TestWithParam<const char *> {};

TEST_P(BundledDialectDifferentialTest, EnginesAgree) {
  GlobalsGuard Guard;
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);
  auto Module = loadIRDLFile(Ctx, std::string(IRDL_DIALECTS_DIR) + "/" +
                                      GetParam(),
                             SrcMgr, Diags);
  ASSERT_NE(Module, nullptr) << Diags.renderAll();

  for (const auto &Spec : Module->getDialects()) {
    OwningOpRef M = synthesizeModule(Ctx, *Spec);
    ASSERT_TRUE(static_cast<bool>(M)) << Spec->Name;
    expectEnginesAgree(M.get(), SrcMgr,
                       std::string(GetParam()) + "/" + Spec->Name);

    ModuleSynthOptions Opts;
    Opts.Seed = 13;
    OwningOpRef Mut = synthesizeModule(Ctx, *Spec, Opts);
    ASSERT_TRUE(static_cast<bool>(Mut)) << Spec->Name;
    mutateDropAttributes(Mut.get());
    expectEnginesAgree(Mut.get(), SrcMgr,
                       std::string(GetParam()) + "/" + Spec->Name +
                           " (mutated)");
  }
}

INSTANTIATE_TEST_SUITE_P(Bundled, BundledDialectDifferentialTest,
                         ::testing::Values("cmath.irdl", "arith.irdl",
                                           "scf.irdl", "complex.irdl",
                                           "math.irdl"));

} // namespace
