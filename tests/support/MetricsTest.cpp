//===- MetricsTest.cpp - Metrics registry & histogram tests ------*- C++ -*-===//
///
/// Covers the metrics core: sharded counters/gauges under concurrency,
/// lossless concurrent histogram merging (counts conserved across
/// threads — the TSan job exercises the same paths for races),
/// percentile estimates staying within one log2-bucket boundary of the
/// exact order statistic, and a golden test of the Prometheus text
/// exposition (HELP/TYPE lines, label escaping, cumulative buckets).
///
/// The registry is process-wide and series live forever, so every test
/// uses its own metric names.

#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

using namespace irdl;

namespace {

TEST(MetricsTest, CounterConcurrentIncrementsAreLossless) {
  Counter &C = MetricsRegistry::instance().getCounter(
      "test_counter_concurrent_total", "concurrency test counter");
  C.reset();
  constexpr int NumThreads = 8, PerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I != PerThread; ++I)
        C.inc();
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(C.get(), (uint64_t)NumThreads * PerThread);
}

TEST(MetricsTest, GaugeAddsAndSubsCancelAcrossThreads) {
  Gauge &G = MetricsRegistry::instance().getGauge("test_gauge_updown",
                                                  "up/down gauge test");
  G.reset();
  constexpr int NumThreads = 8, PerThread = 5000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&G] {
      for (int I = 0; I != PerThread; ++I) {
        G.inc();
        G.dec();
      }
      G.add(3);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(G.get(), 3 * NumThreads);
  G.sub(3 * NumThreads + 7);
  EXPECT_EQ(G.get(), -7);
}

TEST(MetricsTest, HistogramBucketLayout) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(1023), 10u);
  EXPECT_EQ(Histogram::bucketOf(1024), 11u);
  EXPECT_EQ(Histogram::bucketOf(~uint64_t(0)), 63u);

  // Every value lands in the bucket whose (inclusive) upper edge bounds
  // it from above, and the previous edge is strictly below it.
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(7), uint64_t(8),
                     uint64_t(1000000), uint64_t(1) << 40}) {
    unsigned B = Histogram::bucketOf(V);
    EXPECT_LE(V, HistogramSnapshot::bucketUpperEdge(B)) << V;
    if (B > 0)
      EXPECT_GT(V, HistogramSnapshot::bucketUpperEdge(B - 1)) << V;
  }
}

TEST(MetricsTest, ConcurrentHistogramRecordingMergesLosslessly) {
  Histogram &H = MetricsRegistry::instance().getHistogram(
      "test_hist_concurrent_ns", "concurrent recording test");
  H.reset();
  constexpr int NumThreads = 8, PerThread = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&H, T] {
      for (int I = 0; I != PerThread; ++I)
        H.record((uint64_t)(T * PerThread + I));
    });
  for (auto &T : Threads)
    T.join();

  HistogramSnapshot Snap = H.snapshot();
  uint64_t N = (uint64_t)NumThreads * PerThread;
  EXPECT_EQ(Snap.Count, N);
  EXPECT_EQ(Snap.Sum, N * (N - 1) / 2); // sum of 0..N-1
  EXPECT_EQ(Snap.Max, N - 1);
  uint64_t BucketTotal = 0;
  for (uint64_t B : Snap.Buckets)
    BucketTotal += B;
  EXPECT_EQ(BucketTotal, N);
}

TEST(MetricsTest, QuantileWithinOneBucketOfExactValue) {
  Histogram &H = MetricsRegistry::instance().getHistogram(
      "test_hist_quantile_ns", "quantile accuracy test");
  H.reset();
  // A skewed sample set with a long tail, like real latencies.
  std::vector<uint64_t> Values;
  for (uint64_t I = 1; I <= 900; ++I)
    Values.push_back(100 + I % 50); // bulk: 100..149
  for (uint64_t I = 0; I != 90; ++I)
    Values.push_back(1000 + I * 10); // tail: 1000..1890
  for (uint64_t I = 0; I != 10; ++I)
    Values.push_back(100000 + I); // extreme tail
  for (uint64_t V : Values)
    H.record(V);

  std::vector<uint64_t> Sorted = Values;
  std::sort(Sorted.begin(), Sorted.end());
  HistogramSnapshot Snap = H.snapshot();
  for (double Q : {0.5, 0.9, 0.99}) {
    size_t Rank =
        std::min(Sorted.size() - 1,
                 (size_t)std::max(0.0, std::ceil(Q * Sorted.size()) - 1));
    uint64_t Exact = Sorted[Rank];
    uint64_t Est = Snap.quantile(Q);
    // The estimate is the upper edge of the exact value's bucket: same
    // bucket, so within one power-of-2 boundary.
    unsigned ExactBucket = Histogram::bucketOf(Exact);
    EXPECT_EQ(Est, HistogramSnapshot::bucketUpperEdge(ExactBucket))
        << "q=" << Q << " exact=" << Exact;
    EXPECT_GE(Est, Exact) << "q=" << Q;
    if (ExactBucket > 0)
      EXPECT_GT(Est, HistogramSnapshot::bucketUpperEdge(ExactBucket - 1))
          << "q=" << Q;
  }
  EXPECT_EQ(Snap.quantile(1.0),
            HistogramSnapshot::bucketUpperEdge(Histogram::bucketOf(100009)));
}

TEST(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  HistogramSnapshot Empty;
  EXPECT_EQ(Empty.quantile(0.5), 0u);
  EXPECT_EQ(Empty.quantile(0.99), 0u);
}

TEST(MetricsTest, LabeledSeriesAreDistinctAndCanonicalized) {
  MetricsRegistry &R = MetricsRegistry::instance();
  Counter &A = R.getCounter("test_labeled_total", "labeled series test",
                            {{"op", "mul"}, {"dialect", "cmath"}});
  Counter &B = R.getCounter("test_labeled_total", "labeled series test",
                            {{"dialect", "cmath"}, {"op", "mul"}});
  Counter &Other = R.getCounter("test_labeled_total", "labeled series test",
                                {{"dialect", "cmath"}, {"op", "norm"}});
  // Same label set in any order names the same series.
  EXPECT_EQ(&A, &B);
  EXPECT_NE(&A, &Other);
}

TEST(MetricsTest, PrometheusExpositionGolden) {
  // A throwaway registry shape is impossible (process-wide singleton),
  // so the golden test greps for exact lines instead of full-document
  // equality.
  MetricsRegistry &R = MetricsRegistry::instance();
  Counter &C = R.getCounter("golden_requests_total", "requests served",
                            {{"path", "va\\l\"ue\n"}});
  C.reset();
  C.inc(42);
  Gauge &G = R.getGauge("golden_queue_depth", "queued tasks");
  G.reset();
  G.set(-3);
  Histogram &H =
      R.getHistogram("golden_latency_ns", "request latency");
  H.reset();
  H.record(0);
  H.record(5); // bucket 3, edge 7
  H.record(5);
  H.record(1000); // bucket 10, edge 1023

  std::string Text = R.renderPrometheus();
  auto Contains = [&](const std::string &Needle) {
    EXPECT_NE(Text.find(Needle), std::string::npos)
        << "missing: " << Needle << "\nin:\n" << Text;
  };
  Contains("# HELP golden_requests_total requests served\n");
  Contains("# TYPE golden_requests_total counter\n");
  // Label escaping: backslash, double quote, newline.
  Contains("golden_requests_total{path=\"va\\\\l\\\"ue\\n\"} 42\n");
  Contains("# TYPE golden_queue_depth gauge\n");
  Contains("golden_queue_depth -3\n");
  Contains("# TYPE golden_latency_ns histogram\n");
  // Cumulative buckets: le="0" sees the zero sample, le="7" adds the two
  // fives, le="1023" adds the thousand, +Inf equals the count.
  Contains("golden_latency_ns_bucket{le=\"0\"} 1\n");
  Contains("golden_latency_ns_bucket{le=\"7\"} 3\n");
  Contains("golden_latency_ns_bucket{le=\"1023\"} 4\n");
  Contains("golden_latency_ns_bucket{le=\"+Inf\"} 4\n");
  Contains("golden_latency_ns_sum 1010\n");
  Contains("golden_latency_ns_count 4\n");
}

TEST(MetricsTest, JsonExportHasPercentilesAndParsesShape) {
  MetricsRegistry &R = MetricsRegistry::instance();
  Histogram &H = R.getHistogram("test_json_hist_ns", "json export test");
  H.reset();
  for (int I = 0; I != 100; ++I)
    H.record(100); // bucket 7, edge 127
  std::string Json = R.renderJson();
  EXPECT_NE(Json.find("\"name\":\"test_json_hist_ns\""), std::string::npos);
  EXPECT_NE(Json.find("\"p50\":127"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"p99\":127"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"count\":100"), std::string::npos) << Json;
}

TEST(MetricsTest, EnableFlagTogglesAndResets) {
  EXPECT_FALSE(metricsEnabled());
  setMetricsEnabled(true);
  EXPECT_TRUE(metricsEnabled());
  setMetricsEnabled(false);
  EXPECT_FALSE(metricsEnabled());

  Counter &C =
      MetricsRegistry::instance().getCounter("test_reset_total", "reset");
  C.inc(5);
  EXPECT_GE(C.get(), 5u);
  MetricsRegistry::instance().resetAll();
  EXPECT_EQ(C.get(), 0u);
}

} // namespace
