//===- StringExtrasTest.cpp -------------------------------------------===//

#include "support/StringExtras.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

TEST(StringExtrasTest, IdentifierPredicates) {
  EXPECT_TRUE(isIdentifierStart('a'));
  EXPECT_TRUE(isIdentifierStart('Z'));
  EXPECT_TRUE(isIdentifierStart('_'));
  EXPECT_FALSE(isIdentifierStart('3'));
  EXPECT_TRUE(isIdentifierChar('3'));
  EXPECT_FALSE(isIdentifierChar('-'));

  EXPECT_TRUE(isIdentifier("foo_bar3"));
  EXPECT_FALSE(isIdentifier("3foo"));
  EXPECT_FALSE(isIdentifier(""));
  EXPECT_FALSE(isIdentifier("a-b"));
}

TEST(StringExtrasTest, EscapeString) {
  EXPECT_EQ(escapeString("plain"), "plain");
  EXPECT_EQ(escapeString("a\"b"), "a\\\"b");
  EXPECT_EQ(escapeString("a\\b"), "a\\\\b");
  EXPECT_EQ(escapeString("a\nb\tc"), "a\\nb\\tc");
}

TEST(StringExtrasTest, UnescapeString) {
  EXPECT_EQ(unescapeString("plain"), "plain");
  EXPECT_EQ(unescapeString("a\\\"b"), "a\"b");
  EXPECT_EQ(unescapeString("a\\nb"), "a\nb");
  EXPECT_EQ(unescapeString("bad\\q"), std::nullopt);
  EXPECT_EQ(unescapeString("trailing\\"), std::nullopt);
}

TEST(StringExtrasTest, EscapeRoundTrip) {
  std::string Original = "quote\" slash\\ nl\n tab\t end";
  auto Back = unescapeString(escapeString(Original));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, Original);
}

TEST(StringExtrasTest, SplitString) {
  auto Pieces = splitString("a.b.c", '.');
  ASSERT_EQ(Pieces.size(), 3u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[2], "c");

  auto Empty = splitString("", '.');
  ASSERT_EQ(Empty.size(), 1u);
  EXPECT_EQ(Empty[0], "");

  auto Gaps = splitString("a..b", '.');
  ASSERT_EQ(Gaps.size(), 3u);
  EXPECT_EQ(Gaps[1], "");
}

TEST(StringExtrasTest, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(startsWith("x", ""));
}

TEST(StringExtrasTest, ParseUInt) {
  EXPECT_EQ(parseUInt("0"), 0u);
  EXPECT_EQ(parseUInt("12345"), 12345u);
  EXPECT_EQ(parseUInt(""), std::nullopt);
  EXPECT_EQ(parseUInt("12a"), std::nullopt);
  EXPECT_EQ(parseUInt("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(parseUInt("18446744073709551616"), std::nullopt);
}

TEST(StringExtrasTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"solo"}, "."), "solo");
}

} // namespace
