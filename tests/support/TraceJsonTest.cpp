//===- TraceJsonTest.cpp - Chrome trace export ------------------------===//
///
/// Validates TimerGroup::renderTraceJson output with a minimal JSON
/// parser: the document must parse, carry the trace-event schema Chrome
/// and Perfetto expect, and the recorded events must be well-nested per
/// thread.

#include "support/Timing.h"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace irdl;

namespace {

//===----------------------------------------------------------------------===//
// A tiny JSON parser, just enough to validate the exporter.
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } K;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<std::unique_ptr<JsonValue>> Arr;
  std::map<std::string, std::unique_ptr<JsonValue>> Obj;

  const JsonValue *get(const std::string &Key) const {
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : It->second.get();
  }
};

class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  std::unique_ptr<JsonValue> parse() {
    auto V = parseValue();
    skipWs();
    if (!V || Pos != Text.size())
      return nullptr; // trailing garbage or error
    return V;
  }

private:
  void skipWs() {
    while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  std::unique_ptr<JsonValue> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return nullptr;
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return parseString();
    if (C == '-' || std::isdigit((unsigned char)C))
      return parseNumber();
    if (Text.substr(Pos, 4) == "true") {
      Pos += 4;
      auto V = std::make_unique<JsonValue>();
      V->K = JsonValue::Kind::Bool;
      V->B = true;
      return V;
    }
    if (Text.substr(Pos, 5) == "false") {
      Pos += 5;
      auto V = std::make_unique<JsonValue>();
      V->K = JsonValue::Kind::Bool;
      return V;
    }
    if (Text.substr(Pos, 4) == "null") {
      Pos += 4;
      auto V = std::make_unique<JsonValue>();
      V->K = JsonValue::Kind::Null;
      return V;
    }
    return nullptr;
  }

  std::unique_ptr<JsonValue> parseString() {
    if (!consume('"'))
      return nullptr;
    auto V = std::make_unique<JsonValue>();
    V->K = JsonValue::Kind::String;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\') {
        if (Pos >= Text.size())
          return nullptr;
        char E = Text[Pos++];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          V->Str += E;
          break;
        case 'n':
          V->Str += '\n';
          break;
        case 't':
          V->Str += '\t';
          break;
        case 'u':
          if (Pos + 4 > Text.size())
            return nullptr;
          Pos += 4; // validated, not decoded
          V->Str += '?';
          break;
        default:
          return nullptr;
        }
      } else {
        V->Str += C;
      }
    }
    if (Pos >= Text.size())
      return nullptr;
    ++Pos; // closing quote
    return V;
  }

  std::unique_ptr<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit((unsigned char)Text[Pos]) || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    auto V = std::make_unique<JsonValue>();
    V->K = JsonValue::Kind::Number;
    try {
      V->Num = std::stod(std::string(Text.substr(Start, Pos - Start)));
    } catch (...) {
      return nullptr;
    }
    return V;
  }

  std::unique_ptr<JsonValue> parseArray() {
    if (!consume('['))
      return nullptr;
    auto V = std::make_unique<JsonValue>();
    V->K = JsonValue::Kind::Array;
    skipWs();
    if (consume(']'))
      return V;
    do {
      auto E = parseValue();
      if (!E)
        return nullptr;
      V->Arr.push_back(std::move(E));
    } while (consume(','));
    if (!consume(']'))
      return nullptr;
    return V;
  }

  std::unique_ptr<JsonValue> parseObject() {
    if (!consume('{'))
      return nullptr;
    auto V = std::make_unique<JsonValue>();
    V->K = JsonValue::Kind::Object;
    skipWs();
    if (consume('}'))
      return V;
    do {
      auto Key = parseString();
      if (!Key || !consume(':'))
        return nullptr;
      auto Val = parseValue();
      if (!Val)
        return nullptr;
      V->Obj[Key->Str] = std::move(Val);
    } while (consume(','));
    if (!consume('}'))
      return nullptr;
    return V;
  }

  std::string_view Text;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Tests
//===----------------------------------------------------------------------===//

void spinBriefly() {
  uint64_t Start = steadyNowNs();
  while (steadyNowNs() - Start < 200 * 1000) // 0.2 ms
    ;
}

/// Builds a group with a known scope structure: outer > {child-a,
/// child-b}, then a sibling "tail" at top level.
void recordFixture(TimerGroup &G) {
  {
    TimingScope Outer(G, "outer");
    {
      TimingScope A(G, "child-a");
      spinBriefly();
    }
    {
      TimingScope B(G, "child-b");
      spinBriefly();
    }
  }
  TimingScope Tail(G, "tail");
  spinBriefly();
}

TEST(TraceJsonTest, ParsesAndHasSchema) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("trace-test");
  recordFixture(G);
  std::string Json = G.renderTraceJson("my-process");

  auto Doc = JsonParser(Json).parse();
  ASSERT_NE(Doc, nullptr) << "trace JSON failed to parse:\n" << Json;
  ASSERT_EQ(Doc->K, JsonValue::Kind::Object);

  const JsonValue *Unit = Doc->get("displayTimeUnit");
  ASSERT_NE(Unit, nullptr);
  EXPECT_EQ(Unit->Str, "ms");

  const JsonValue *Events = Doc->get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->K, JsonValue::Kind::Array);
  // process_name + thread_name metadata events + 4 scopes.
  ASSERT_EQ(Events->Arr.size(), 6u);

  // First event: the process_name metadata record.
  const JsonValue &Meta = *Events->Arr[0];
  ASSERT_EQ(Meta.K, JsonValue::Kind::Object);
  EXPECT_EQ(Meta.get("ph")->Str, "M");
  EXPECT_EQ(Meta.get("name")->Str, "process_name");
  ASSERT_NE(Meta.get("args"), nullptr);
  EXPECT_EQ(Meta.get("args")->get("name")->Str, "my-process");

  // The single recording thread gets a thread_name metadata row named
  // "main" on its tid.
  const JsonValue &ThreadMeta = *Events->Arr[1];
  EXPECT_EQ(ThreadMeta.get("ph")->Str, "M");
  EXPECT_EQ(ThreadMeta.get("name")->Str, "thread_name");
  EXPECT_EQ(ThreadMeta.get("tid")->Num, 1.0);
  ASSERT_NE(ThreadMeta.get("args"), nullptr);
  EXPECT_EQ(ThreadMeta.get("args")->get("name")->Str, "main");

  // Every other event is a complete ('X') event with the full schema.
  for (size_t I = 2; I != Events->Arr.size(); ++I) {
    const JsonValue &E = *Events->Arr[I];
    ASSERT_EQ(E.K, JsonValue::Kind::Object) << "event " << I;
    ASSERT_NE(E.get("name"), nullptr) << "event " << I;
    ASSERT_NE(E.get("ph"), nullptr) << "event " << I;
    EXPECT_EQ(E.get("ph")->Str, "X") << "event " << I;
    for (const char *Key : {"pid", "tid", "ts", "dur"}) {
      ASSERT_NE(E.get(Key), nullptr)
          << "event " << I << " missing " << Key;
      EXPECT_EQ(E.get(Key)->K, JsonValue::Kind::Number);
    }
    EXPECT_GE(E.get("ts")->Num, 0.0);
    EXPECT_GE(E.get("dur")->Num, 0.0);
  }
}

TEST(TraceJsonTest, EventsCoverAllScopesAndNestProperly) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("trace-test");
  recordFixture(G);
  auto Doc = JsonParser(G.renderTraceJson()).parse();
  ASSERT_NE(Doc, nullptr);
  const JsonValue *Events = Doc->get("traceEvents");
  ASSERT_NE(Events, nullptr);

  struct Interval {
    std::string Name;
    double Ts, Dur;
  };
  std::map<double, std::vector<Interval>> ByTid;
  std::map<std::string, unsigned> NameCount;
  for (const auto &EPtr : Events->Arr) {
    const JsonValue &E = *EPtr;
    if (E.get("ph")->Str != "X")
      continue;
    ++NameCount[E.get("name")->Str];
    ByTid[E.get("tid")->Num].push_back(
        {E.get("name")->Str, E.get("ts")->Num, E.get("dur")->Num});
  }
  EXPECT_EQ(NameCount["outer"], 1u);
  EXPECT_EQ(NameCount["child-a"], 1u);
  EXPECT_EQ(NameCount["child-b"], 1u);
  EXPECT_EQ(NameCount["tail"], 1u);

  // Per thread, any two events must be disjoint or properly nested —
  // that is what makes the trace render as a flame graph.
  for (const auto &[Tid, Ivs] : ByTid) {
    for (size_t I = 0; I != Ivs.size(); ++I) {
      for (size_t J = I + 1; J != Ivs.size(); ++J) {
        const Interval &A = Ivs[I], &B = Ivs[J];
        double AEnd = A.Ts + A.Dur, BEnd = B.Ts + B.Dur;
        bool Disjoint = AEnd <= B.Ts || BEnd <= A.Ts;
        bool ANestsInB = A.Ts >= B.Ts && AEnd <= BEnd;
        bool BNestsInA = B.Ts >= A.Ts && BEnd <= AEnd;
        EXPECT_TRUE(Disjoint || ANestsInB || BNestsInA)
            << A.Name << " [" << A.Ts << "," << AEnd << ") overlaps "
            << B.Name << " [" << B.Ts << "," << BEnd << ")";
      }
    }
  }

  // The fixture's children lie inside "outer".
  const auto &Ivs = ByTid.begin()->second;
  const Interval *Outer = nullptr, *ChildA = nullptr;
  for (const auto &Iv : Ivs) {
    if (Iv.Name == "outer")
      Outer = &Iv;
    if (Iv.Name == "child-a")
      ChildA = &Iv;
  }
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(ChildA, nullptr);
  EXPECT_GE(ChildA->Ts, Outer->Ts);
  EXPECT_LE(ChildA->Ts + ChildA->Dur, Outer->Ts + Outer->Dur);
}

TEST(TraceJsonTest, EscapesSpecialCharactersInNames) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("trace-test");
  {
    TimingScope S(G, "quote\"back\\slash\nnewline");
  }
  auto Doc = JsonParser(G.renderTraceJson()).parse();
  ASSERT_NE(Doc, nullptr) << "escaping broke the JSON";
  const JsonValue *Events = Doc->get("traceEvents");
  // process_name + thread_name metadata + the one scope.
  ASSERT_EQ(Events->Arr.size(), 3u);
  EXPECT_EQ(Events->Arr[2]->get("name")->Str,
            "quote\"back\\slash\nnewline");
}

TEST(TraceJsonTest, JsonSummaryParsesAndMirrorsTree) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("summary-test");
  recordFixture(G);
  auto Doc = JsonParser(G.renderJsonSummary()).parse();
  ASSERT_NE(Doc, nullptr);
  EXPECT_EQ(Doc->get("group")->Str, "summary-test");
  EXPECT_GT(Doc->get("total_wall_ms")->Num, 0.0);
  const JsonValue *Tree = Doc->get("tree");
  ASSERT_NE(Tree, nullptr);
  EXPECT_EQ(Tree->get("name")->Str, "<total>");
  ASSERT_EQ(Tree->get("children")->Arr.size(), 2u); // outer, tail
  const JsonValue &Outer = *Tree->get("children")->Arr[0];
  EXPECT_EQ(Outer.get("name")->Str, "outer");
  EXPECT_EQ(Outer.get("children")->Arr.size(), 2u);
}

} // namespace
