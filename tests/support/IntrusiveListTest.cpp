//===- IntrusiveListTest.cpp ------------------------------------------===//

#include "support/IntrusiveList.h"

#include <gtest/gtest.h>

namespace {

struct Item : irdl::IntrusiveListNode<Item> {
  explicit Item(int V) : Value(V) {}
  int Value;
};

using List = irdl::IntrusiveList<Item>;

std::vector<int> values(List &L) {
  std::vector<int> Result;
  for (Item &I : L)
    Result.push_back(I.Value);
  return Result;
}

TEST(IntrusiveListTest, EmptyList) {
  List L;
  EXPECT_TRUE(L.empty());
  EXPECT_EQ(L.size(), 0u);
  EXPECT_EQ(L.begin(), L.end());
}

TEST(IntrusiveListTest, PushBackAndIterate) {
  List L;
  L.push_back(new Item(1));
  L.push_back(new Item(2));
  L.push_back(new Item(3));
  EXPECT_EQ(values(L), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(L.size(), 3u);
  EXPECT_EQ(L.front().Value, 1);
  EXPECT_EQ(L.back().Value, 3);
}

TEST(IntrusiveListTest, PushFront) {
  List L;
  L.push_back(new Item(2));
  L.push_front(new Item(1));
  EXPECT_EQ(values(L), (std::vector<int>{1, 2}));
}

TEST(IntrusiveListTest, InsertMiddle) {
  List L;
  L.push_back(new Item(1));
  Item *Three = new Item(3);
  L.push_back(Three);
  L.insert(List::iterator(Three), new Item(2));
  EXPECT_EQ(values(L), (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveListTest, RemoveKeepsNode) {
  List L;
  L.push_back(new Item(1));
  Item *Two = new Item(2);
  L.push_back(Two);
  L.push_back(new Item(3));
  Item *Removed = L.remove(Two);
  EXPECT_EQ(Removed, Two);
  EXPECT_FALSE(Two->isLinked());
  EXPECT_EQ(values(L), (std::vector<int>{1, 3}));
  delete Two;
}

TEST(IntrusiveListTest, EraseReturnsNext) {
  List L;
  L.push_back(new Item(1));
  Item *Two = new Item(2);
  L.push_back(Two);
  L.push_back(new Item(3));
  auto It = L.erase(Two);
  EXPECT_EQ(It->Value, 3);
  EXPECT_EQ(values(L), (std::vector<int>{1, 3}));
}

TEST(IntrusiveListTest, NextPrevNode) {
  List L;
  Item *One = new Item(1);
  Item *Two = new Item(2);
  L.push_back(One);
  L.push_back(Two);
  EXPECT_EQ(One->getNextNode(), Two);
  EXPECT_EQ(Two->getPrevNode(), One);
  EXPECT_EQ(One->getPrevNode(), nullptr);
  EXPECT_EQ(Two->getNextNode(), nullptr);
}

TEST(IntrusiveListTest, BidirectionalIteration) {
  List L;
  L.push_back(new Item(1));
  L.push_back(new Item(2));
  auto It = L.end();
  --It;
  EXPECT_EQ(It->Value, 2);
  --It;
  EXPECT_EQ(It->Value, 1);
}

TEST(IntrusiveListTest, Clear) {
  List L;
  L.push_back(new Item(1));
  L.push_back(new Item(2));
  L.clear();
  EXPECT_TRUE(L.empty());
  // Reusable after clear.
  L.push_back(new Item(7));
  EXPECT_EQ(values(L), (std::vector<int>{7}));
}

TEST(IntrusiveListTest, Splice) {
  List A, B;
  A.push_back(new Item(1));
  A.push_back(new Item(4));
  B.push_back(new Item(2));
  B.push_back(new Item(3));
  Item *Four = &A.back();
  A.splice(List::iterator(Four), B);
  EXPECT_TRUE(B.empty());
  EXPECT_EQ(values(A), (std::vector<int>{1, 2, 3, 4}));
}

TEST(IntrusiveListTest, SpliceEmptyIsNoop) {
  List A, B;
  A.push_back(new Item(1));
  A.splice(A.end(), B);
  EXPECT_EQ(values(A), (std::vector<int>{1}));
}

TEST(IntrusiveListTest, IteratorStableAcrossOtherRemovals) {
  List L;
  L.push_back(new Item(1));
  Item *Two = new Item(2);
  L.push_back(Two);
  Item *Three = new Item(3);
  L.push_back(Three);
  List::iterator It(Three);
  L.erase(Two);
  EXPECT_EQ(It->Value, 3);
  ++It;
  EXPECT_EQ(It, L.end());
}

} // namespace
