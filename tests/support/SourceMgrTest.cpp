//===- SourceMgrTest.cpp ----------------------------------------------===//

#include "support/SourceMgr.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

TEST(SourceMgrTest, AddBuffer) {
  SourceMgr SM;
  unsigned Id = SM.addBuffer("hello", "test.irdl");
  EXPECT_EQ(Id, 1u);
  EXPECT_EQ(SM.getNumBuffers(), 1u);
  EXPECT_EQ(SM.getBufferContents(Id), "hello");
  EXPECT_EQ(SM.getBufferName(Id), "test.irdl");
}

TEST(SourceMgrTest, FindBufferContaining) {
  SourceMgr SM;
  unsigned A = SM.addBuffer("aaaa", "a");
  unsigned B = SM.addBuffer("bbbb", "b");
  SMLoc InA = SMLoc::getFromPointer(SM.getBufferContents(A).data() + 2);
  SMLoc InB = SMLoc::getFromPointer(SM.getBufferContents(B).data());
  EXPECT_EQ(SM.findBufferContaining(InA), A);
  EXPECT_EQ(SM.findBufferContaining(InB), B);
  EXPECT_EQ(SM.findBufferContaining(SMLoc()), 0u);
}

TEST(SourceMgrTest, LineAndColumn) {
  SourceMgr SM;
  unsigned Id = SM.addBuffer("line one\nline two\nline three", "f");
  std::string_view Contents = SM.getBufferContents(Id);
  // Points at the 'w' in "two".
  SMLoc Loc = SMLoc::getFromPointer(Contents.data() + 15);
  SMLineAndColumn LC = SM.getLineAndColumn(Loc);
  EXPECT_EQ(LC.Line, 2u);
  EXPECT_EQ(LC.Column, 7u);
  EXPECT_EQ(LC.LineText, "line two");
  EXPECT_EQ(LC.BufferName, "f");
}

TEST(SourceMgrTest, FirstCharacter) {
  SourceMgr SM;
  unsigned Id = SM.addBuffer("x", "f");
  SMLoc Loc = SM.getBufferStart(Id);
  SMLineAndColumn LC = SM.getLineAndColumn(Loc);
  EXPECT_EQ(LC.Line, 1u);
  EXPECT_EQ(LC.Column, 1u);
}

TEST(SourceMgrTest, EndOfBufferLocationIsValid) {
  SourceMgr SM;
  unsigned Id = SM.addBuffer("ab", "f");
  std::string_view Contents = SM.getBufferContents(Id);
  SMLoc Loc = SMLoc::getFromPointer(Contents.data() + 2);
  EXPECT_EQ(SM.findBufferContaining(Loc), Id);
  SMLineAndColumn LC = SM.getLineAndColumn(Loc);
  EXPECT_EQ(LC.Line, 1u);
  EXPECT_EQ(LC.Column, 3u);
}

TEST(SourceMgrTest, UnknownLocation) {
  SourceMgr SM;
  SM.addBuffer("ab", "f");
  const char *External = "external";
  SMLineAndColumn LC =
      SM.getLineAndColumn(SMLoc::getFromPointer(External));
  EXPECT_EQ(LC.Line, 0u);
}

TEST(SourceMgrTest, SMRange) {
  const char *Buf = "xyz";
  SMRange R(SMLoc::getFromPointer(Buf), SMLoc::getFromPointer(Buf + 3));
  EXPECT_TRUE(R.isValid());
  EXPECT_EQ(R.getEnd().getPointer() - R.getStart().getPointer(), 3);
  EXPECT_FALSE(SMRange().isValid());
}

} // namespace
