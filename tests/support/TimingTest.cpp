//===- TimingTest.cpp - TimerGroup/TimingScope -----------------------===//

#include "support/Timing.h"

#include <gtest/gtest.h>

#include <thread>

using namespace irdl;

namespace {

// A scope long enough that steady_clock registers nonzero time.
void spinBriefly() {
  uint64_t Start = steadyNowNs();
  while (steadyNowNs() - Start < 200 * 1000) // 0.2 ms
    ;
}

TEST(TimingTest, NestingBuildsAHierarchy) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("test");
  {
    TimingScope Outer(G, "outer");
    spinBriefly();
    {
      TimingScope Inner(G, "inner1");
      spinBriefly();
    }
    {
      TimingScope Inner(G, "inner2");
      spinBriefly();
    }
  }
  const TimerGroup::Node &Root = G.getRoot();
  ASSERT_EQ(Root.getChildren().size(), 1u);
  const TimerGroup::Node *Outer = Root.findChild("outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->getCount(), 1u);
  ASSERT_EQ(Outer->getChildren().size(), 2u);
  EXPECT_NE(Outer->findChild("inner1"), nullptr);
  EXPECT_NE(Outer->findChild("inner2"), nullptr);
  // The root aggregates the outermost scopes only.
  EXPECT_EQ(Root.getWallNs(), Outer->getWallNs());
}

TEST(TimingTest, SameNameScopesAggregate) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("test");
  for (int I = 0; I != 3; ++I) {
    TimingScope S(G, "repeated");
    spinBriefly();
  }
  const TimerGroup::Node *N = G.getRoot().findChild("repeated");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->getCount(), 3u);
  EXPECT_EQ(G.getRoot().getChildren().size(), 1u);
  EXPECT_GT(N->getWallNs(), 0u);
}

TEST(TimingTest, ExclusiveTimeMath) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("test");
  {
    TimingScope Outer(G, "outer");
    spinBriefly(); // exclusive work
    {
      TimingScope Inner(G, "inner");
      spinBriefly();
    }
  }
  const TimerGroup::Node *Outer = G.getRoot().findChild("outer");
  ASSERT_NE(Outer, nullptr);
  const TimerGroup::Node *Inner = Outer->findChild("inner");
  ASSERT_NE(Inner, nullptr);
  // Parent wall time covers the child's.
  EXPECT_GE(Outer->getWallNs(), Inner->getWallNs());
  EXPECT_EQ(Outer->getChildrenWallNs(), Inner->getWallNs());
  // Exclusive = wall - children, and the exclusive spin is nonzero.
  EXPECT_EQ(Outer->getExclusiveNs(),
            Outer->getWallNs() - Inner->getWallNs());
  EXPECT_GT(Outer->getExclusiveNs(), 0u);
  // A leaf's exclusive time is its wall time.
  EXPECT_EQ(Inner->getExclusiveNs(), Inner->getWallNs());
}

TEST(TimingTest, RecursiveSameNameDoesNotDoubleCountOneNode) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("test");
  {
    TimingScope A(G, "work");
    {
      TimingScope B(G, "work"); // nests as a child, not the same node
      spinBriefly();
    }
  }
  const TimerGroup::Node *Top = G.getRoot().findChild("work");
  ASSERT_NE(Top, nullptr);
  EXPECT_EQ(Top->getCount(), 1u);
  const TimerGroup::Node *Nested = Top->findChild("work");
  ASSERT_NE(Nested, nullptr);
  EXPECT_EQ(Nested->getCount(), 1u);
  EXPECT_EQ(G.getRoot().getWallNs(), Top->getWallNs());
}

TEST(TimingTest, ThreadsGetIndependentStacks) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("test");
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&G] {
      for (int I = 0; I != 8; ++I) {
        TimingScope Outer(G, "thread-outer");
        TimingScope Inner(G, "thread-inner");
        spinBriefly();
      }
    });
  for (auto &T : Threads)
    T.join();
  const TimerGroup::Node *Outer = G.getRoot().findChild("thread-outer");
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->getCount(), 32u);
  const TimerGroup::Node *Inner = Outer->findChild("thread-inner");
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->getCount(), 32u);
}

TEST(TimingTest, NullGroupScopesAreNoOps) {
  // Must not crash and must record nothing anywhere.
  TimingScope S(static_cast<TimerGroup *>(nullptr), "nothing");
  S.stop();
  SUCCEED();
}

TEST(TimingTest, MacroUsesActiveGroupAndDefaultsOff) {
  ASSERT_EQ(getActiveTimerGroup(), nullptr);
  {
    IRDL_TIME_SCOPE("inactive"); // no active group: no-op
  }
  TimerGroup G("active");
  setActiveTimerGroup(&G);
  {
    IRDL_TIME_SCOPE("macro-scope");
  }
  setActiveTimerGroup(nullptr);
#if IRDL_ENABLE_TIMING
  EXPECT_NE(G.getRoot().findChild("macro-scope"), nullptr);
#else
  // Compiled out: nothing may be recorded.
  EXPECT_TRUE(G.getRoot().getChildren().empty());
#endif
}

TEST(TimingTest, RenderTreeListsScopes) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("render-me");
  {
    TimingScope Outer(G, "phase-a");
    TimingScope Inner(G, "phase-b");
    spinBriefly();
  }
  std::string Tree = G.renderTree();
  EXPECT_NE(Tree.find("render-me"), std::string::npos);
  EXPECT_NE(Tree.find("phase-a"), std::string::npos);
  EXPECT_NE(Tree.find("phase-b"), std::string::npos);
  EXPECT_NE(Tree.find("%parent"), std::string::npos);
}

TEST(TimingTest, ClearResets) {
#if !IRDL_ENABLE_TIMING
  GTEST_SKIP() << "built with IRDL_ENABLE_TIMING=OFF";
#endif
  TimerGroup G("test");
  {
    TimingScope S(G, "gone");
  }
  ASSERT_FALSE(G.getRoot().getChildren().empty());
  G.clear();
  EXPECT_TRUE(G.getRoot().getChildren().empty());
  EXPECT_EQ(G.getRoot().getWallNs(), 0u);
}

TEST(TimingTest, DestructorClearsActivePointer) {
  {
    auto G = std::make_unique<TimerGroup>("short-lived");
    setActiveTimerGroup(G.get());
  }
  // The group's destructor must not leave a dangling active pointer.
  EXPECT_EQ(getActiveTimerGroup(), nullptr);
}

} // namespace
