//===- DiagnosticsTest.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace irdl;

namespace {

TEST(DiagnosticsTest, EmitAndCount) {
  DiagnosticEngine Engine;
  Engine.emitError(SMLoc(), "bad thing");
  Engine.emitWarning(SMLoc(), "odd thing");
  EXPECT_EQ(Engine.getNumErrors(), 1u);
  EXPECT_TRUE(Engine.hadError());
  EXPECT_EQ(Engine.getDiagnostics().size(), 2u);
  EXPECT_EQ(Engine.getDiagnostics()[0].getMessage(), "bad thing");
  EXPECT_EQ(Engine.getDiagnostics()[0].getSeverity(), Severity::Error);
  EXPECT_EQ(Engine.getDiagnostics()[1].getSeverity(), Severity::Warning);
}

TEST(DiagnosticsTest, Handler) {
  DiagnosticEngine Engine;
  int Calls = 0;
  Engine.setHandler([&](const Diagnostic &) { ++Calls; });
  Engine.emitError(SMLoc(), "x");
  Engine.emitRemark(SMLoc(), "y");
  EXPECT_EQ(Calls, 2);
}

TEST(DiagnosticsTest, Notes) {
  DiagnosticEngine Engine;
  Engine.emitError(SMLoc(), "main").attachNote(SMLoc(), "see here");
  ASSERT_EQ(Engine.getDiagnostics().size(), 1u);
  EXPECT_EQ(Engine.getDiagnostics()[0].getNotes().size(), 1u);
  EXPECT_EQ(Engine.getDiagnostics()[0].getNotes()[0].second, "see here");
}

TEST(DiagnosticsTest, RenderWithoutSourceMgr) {
  DiagnosticEngine Engine;
  Diagnostic &D = Engine.emitError(SMLoc(), "oops");
  EXPECT_EQ(Engine.render(D), "error: oops");
}

TEST(DiagnosticsTest, RenderWithCaret) {
  SourceMgr SM;
  unsigned Id = SM.addBuffer("Dialect cmath {\n  Typo x\n}", "spec.irdl");
  DiagnosticEngine Engine(&SM);
  std::string_view Contents = SM.getBufferContents(Id);
  // Points at "Typo".
  SMLoc Loc = SMLoc::getFromPointer(Contents.data() + 18);
  Diagnostic &D = Engine.emitError(Loc, "unknown directive");
  std::string Rendered = Engine.render(D);
  EXPECT_NE(Rendered.find("spec.irdl:2:3: error: unknown directive"),
            std::string::npos);
  EXPECT_NE(Rendered.find("  Typo x"), std::string::npos);
  EXPECT_NE(Rendered.find("  ^"), std::string::npos);
}

TEST(DiagnosticsTest, ResetAndClear) {
  DiagnosticEngine Engine;
  Engine.emitError(SMLoc(), "x");
  Engine.resetErrorCount();
  EXPECT_FALSE(Engine.hadError());
  EXPECT_EQ(Engine.getDiagnostics().size(), 1u);
  Engine.clear();
  EXPECT_TRUE(Engine.getDiagnostics().empty());
}

TEST(DiagnosticsTest, SeverityNames) {
  EXPECT_EQ(severityName(Severity::Error), "error");
  EXPECT_EQ(severityName(Severity::Warning), "warning");
  EXPECT_EQ(severityName(Severity::Note), "note");
  EXPECT_EQ(severityName(Severity::Remark), "remark");
}

TEST(DiagnosticsTest, RenderAll) {
  DiagnosticEngine Engine;
  Engine.emitError(SMLoc(), "one");
  Engine.emitWarning(SMLoc(), "two");
  std::string All = Engine.renderAll();
  EXPECT_NE(All.find("error: one"), std::string::npos);
  EXPECT_NE(All.find("warning: two"), std::string::npos);
}

} // namespace
