//===- StatisticTest.cpp - Statistic registry ------------------------===//

#include "support/Statistic.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

using namespace irdl;

// File-scope counters, the way instrumented code declares them.
IRDL_STATISTIC(StatisticTest, TestCounterA, "a test counter");
IRDL_STATISTIC(StatisticTest, TestCounterB, "another test counter");

namespace {

TEST(StatisticTest, RegistersAndLooksUp) {
  Statistic *S =
      StatisticRegistry::instance().lookup("StatisticTest", "TestCounterA");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S, &TestCounterA);
  EXPECT_STREQ(S->getDesc(), "a test counter");
  EXPECT_EQ(StatisticRegistry::instance().lookup("StatisticTest", "Nope"),
            nullptr);
}

TEST(StatisticTest, IncrementAndAdd) {
  TestCounterA.reset();
  ++TestCounterA;
  TestCounterA += 41;
  EXPECT_EQ(TestCounterA.get(), 42u);
  TestCounterA.reset();
  EXPECT_EQ(TestCounterA.get(), 0u);
}

TEST(StatisticTest, AtomicUnderConcurrentIncrements) {
  TestCounterB.reset();
  constexpr int NumThreads = 8;
  constexpr int IncsPerThread = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([] {
      for (int I = 0; I != IncsPerThread; ++I)
        ++TestCounterB;
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(TestCounterB.get(),
            (uint64_t)NumThreads * (uint64_t)IncsPerThread);
}

TEST(StatisticTest, GetAllIsSortedByGroupThenName) {
  auto All = StatisticRegistry::instance().getAll();
  ASSERT_GE(All.size(), 2u);
  for (size_t I = 1; I != All.size(); ++I) {
    int G = std::strcmp(All[I - 1]->getGroup(), All[I]->getGroup());
    EXPECT_TRUE(G < 0 ||
                (G == 0 && std::strcmp(All[I - 1]->getName(),
                                       All[I]->getName()) <= 0))
        << All[I - 1]->getGroup() << "." << All[I - 1]->getName()
        << " vs " << All[I]->getGroup() << "." << All[I]->getName();
  }
}

TEST(StatisticTest, RenderTableSkipsZerosByDefault) {
  TestCounterA.reset();
  TestCounterB.reset();
  ++TestCounterA;
  std::string Table = StatisticRegistry::instance().renderTable();
  EXPECT_NE(Table.find("StatisticTest.TestCounterA"), std::string::npos);
  EXPECT_EQ(Table.find("StatisticTest.TestCounterB"), std::string::npos);
  std::string Full =
      StatisticRegistry::instance().renderTable(/*IncludeZero=*/true);
  EXPECT_NE(Full.find("StatisticTest.TestCounterB"), std::string::npos);
  TestCounterA.reset();
}

TEST(StatisticTest, RenderJsonContainsEntries) {
  TestCounterA.reset();
  TestCounterA += 7;
  std::string Json = StatisticRegistry::instance().renderJson();
  EXPECT_NE(Json.find("{\"group\":\"StatisticTest\",\"name\":"
                      "\"TestCounterA\",\"value\":7,"),
            std::string::npos);
  TestCounterA.reset();
}

} // namespace
