//===- CastingTest.cpp - isa/cast/dyn_cast tests ----------------------===//

#include "support/Casting.h"

#include <gtest/gtest.h>

namespace {

struct Animal {
  enum class Kind { Dog, Cat, Sphynx };
  explicit Animal(Kind K) : K(K) {}
  Kind getKind() const { return K; }

private:
  Kind K;
};

struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) {
    return A->getKind() == Kind::Dog;
  }
};

struct Cat : Animal {
  explicit Cat(Kind K = Kind::Cat) : Animal(K) {}
  static bool classof(const Animal *A) {
    return A->getKind() == Kind::Cat || A->getKind() == Kind::Sphynx;
  }
};

struct Sphynx : Cat {
  Sphynx() : Cat(Kind::Sphynx) {}
  static bool classof(const Animal *A) {
    return A->getKind() == Kind::Sphynx;
  }
};

TEST(CastingTest, IsaBasic) {
  Dog D;
  Animal *A = &D;
  EXPECT_TRUE(irdl::isa<Dog>(A));
  EXPECT_FALSE(irdl::isa<Cat>(A));
}

TEST(CastingTest, IsaHierarchy) {
  Sphynx S;
  Animal *A = &S;
  EXPECT_TRUE(irdl::isa<Cat>(A));
  EXPECT_TRUE(irdl::isa<Sphynx>(A));
  EXPECT_FALSE(irdl::isa<Dog>(A));
}

TEST(CastingTest, IsaVariadic) {
  Dog D;
  Animal *A = &D;
  bool Result = irdl::isa<Cat, Dog>(A);
  EXPECT_TRUE(Result);
  bool Result2 = irdl::isa<Cat, Sphynx>(A);
  EXPECT_FALSE(Result2);
}

TEST(CastingTest, IsaUpcastIsAlwaysTrue) {
  Sphynx S;
  Cat *C = &S;
  EXPECT_TRUE(irdl::isa<Cat>(C));
}

TEST(CastingTest, Cast) {
  Sphynx S;
  Animal *A = &S;
  Cat *C = irdl::cast<Cat>(A);
  EXPECT_EQ(C, &S);
}

TEST(CastingTest, CastConst) {
  Dog D;
  const Animal *A = &D;
  const Dog *DP = irdl::cast<Dog>(A);
  EXPECT_EQ(DP, &D);
}

TEST(CastingTest, DynCast) {
  Dog D;
  Animal *A = &D;
  EXPECT_EQ(irdl::dyn_cast<Dog>(A), &D);
  EXPECT_EQ(irdl::dyn_cast<Cat>(A), nullptr);
}

TEST(CastingTest, DynCastIfPresent) {
  Animal *Null = nullptr;
  EXPECT_EQ(irdl::dyn_cast_if_present<Dog>(Null), nullptr);
  Dog D;
  Animal *A = &D;
  EXPECT_EQ(irdl::dyn_cast_if_present<Dog>(A), &D);
}

TEST(CastingTest, IsaAndPresent) {
  Animal *Null = nullptr;
  EXPECT_FALSE(irdl::isa_and_present<Dog>(Null));
  Dog D;
  Animal *A = &D;
  EXPECT_TRUE(irdl::isa_and_present<Dog>(A));
}

} // namespace
