//===- ThreadingTest.cpp - Thread pool and parallel loops --------------===//

#include "support/Threading.h"

#include "support/Timing.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace irdl;

namespace {

/// Every test runs with an explicit thread count and restores "auto"
/// afterwards so the suites stay order-independent.
class ThreadingTest : public ::testing::Test {
protected:
  void TearDown() override { setGlobalThreadCount(0); }
};

TEST_F(ThreadingTest, ParseThreadCountValue) {
  EXPECT_EQ(parseThreadCountValue("0"), 0u);
  EXPECT_EQ(parseThreadCountValue("1"), 1u);
  EXPECT_EQ(parseThreadCountValue("16"), 16u);
  EXPECT_FALSE(parseThreadCountValue(""));
  EXPECT_FALSE(parseThreadCountValue("x"));
  EXPECT_FALSE(parseThreadCountValue("4x"));
  EXPECT_FALSE(parseThreadCountValue("-1"));
}

TEST_F(ThreadingTest, GlobalThreadCountConfiguration) {
  setGlobalThreadCount(4);
  EXPECT_EQ(getGlobalThreadCount(), 4u);
  EXPECT_TRUE(isMultithreadingEnabled());

  setGlobalThreadCount(1);
  EXPECT_EQ(getGlobalThreadCount(), 1u);
  EXPECT_FALSE(isMultithreadingEnabled());

  setGlobalThreadCount(0); // auto: always resolves to >= 1
  EXPECT_GE(getGlobalThreadCount(), 1u);
}

TEST_F(ThreadingTest, ThreadPoolRunsAllTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.getNumThreads(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);

  // The pool is reusable after a wait().
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 101);
}

TEST_F(ThreadingTest, ParallelForCoversEveryIndexOnce) {
  setGlobalThreadCount(4);
  std::vector<std::atomic<int>> Hits(1000);
  parallelFor(0, Hits.size(), [&](size_t I) { ++Hits[I]; });
  for (size_t I = 0; I != Hits.size(); ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST_F(ThreadingTest, ParallelForHonorsBeginOffset) {
  setGlobalThreadCount(4);
  std::vector<int> Out(10, 0);
  parallelFor(3, 10, [&](size_t I) { Out[I] = (int)I; });
  for (size_t I = 0; I != 3; ++I)
    EXPECT_EQ(Out[I], 0);
  for (size_t I = 3; I != 10; ++I)
    EXPECT_EQ(Out[I], (int)I);
}

TEST_F(ThreadingTest, ParallelForEmptyRangeIsANoop) {
  setGlobalThreadCount(4);
  bool Ran = false;
  parallelFor(5, 5, [&](size_t) { Ran = true; });
  parallelFor(7, 3, [&](size_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST_F(ThreadingTest, ParallelForEach) {
  setGlobalThreadCount(4);
  std::vector<int> In(64);
  std::iota(In.begin(), In.end(), 0);
  std::atomic<long> Sum{0};
  parallelForEach(In, [&](int V) { Sum += V; });
  EXPECT_EQ(Sum.load(), 64 * 63 / 2);
}

TEST_F(ThreadingTest, DeterministicResultOrderingAcrossModes) {
  // The per-index-slot contract: results read back in index order must
  // not depend on the thread count.
  auto Run = [](unsigned Threads) {
    setGlobalThreadCount(Threads);
    std::vector<unsigned> Out(512);
    parallelFor(0, Out.size(),
                [&](size_t I) { Out[I] = (unsigned)(I * 2654435761u); });
    return Out;
  };
  EXPECT_EQ(Run(1), Run(4));
}

TEST_F(ThreadingTest, NestedParallelForRunsInlineWithoutDeadlock) {
  setGlobalThreadCount(4);
  std::vector<std::atomic<int>> Hits(16 * 16);
  parallelFor(0, 16, [&](size_t I) {
    // Workers must not resubmit to the pool they are draining.
    parallelFor(0, 16, [&](size_t J) { ++Hits[I * 16 + J]; });
  });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST_F(ThreadingTest, SingleThreadModeRunsInline) {
  setGlobalThreadCount(1);
  std::thread::id Caller = std::this_thread::get_id();
  bool AllInline = true;
  parallelFor(0, 32, [&](size_t) {
    if (std::this_thread::get_id() != Caller)
      AllInline = false;
  });
  EXPECT_TRUE(AllInline);
  EXPECT_FALSE(isThreadPoolWorker());
}

#if IRDL_ENABLE_TIMING
TEST_F(ThreadingTest, WorkerScopesMergeUnderSubmitterNode) {
  setGlobalThreadCount(4);
  TimerGroup Timers("test");
  TimerGroup *Prev = setActiveTimerGroup(&Timers);
  {
    IRDL_TIME_SCOPE("outer");
    parallelFor(0, 8, [&](size_t) { IRDL_TIME_SCOPE("inner"); });
  }
  setActiveTimerGroup(Prev);

  const TimerGroup::Node *Outer = Timers.getRoot().findChild("outer");
  ASSERT_NE(Outer, nullptr);
  // Every worker's "inner" scope lands under "outer", not at the root.
  const TimerGroup::Node *Inner = Outer->findChild("inner");
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(Inner->getCount(), 8u);
  EXPECT_EQ(Timers.getRoot().findChild("inner"), nullptr);
}
#endif

} // namespace
