//===- region_loops.cpp - Regions, terminators, successors ----------------===//
///
/// Exercises the control-flow side of IRDL (Listings 7 and 8): the
/// range_loop operation with a single-block region, a required terminator,
/// and typed region arguments — plus conditional_branch, an operation that
/// becomes a terminator because it declares Successors.
///
/// Run: build/examples/region_loops

#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"

#include <iostream>

using namespace irdl;

int main() {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);

  auto Module = loadIRDLFile(
      Ctx, std::string(IRDL_DIALECTS_DIR) + "/cmath.irdl", SrcMgr, Diags);
  if (!Module) {
    std::cerr << Diags.renderAll();
    return 1;
  }

  // A loop summing its induction variable through a CFG with a
  // conditional branch after it.
  const char *Input = R"(
    std.func @looped(%n: i32, %c: i1) -> f32 {
      "cmath.range_loop"(%n, %n, %n) ({
      ^bb0(%iv: i32):
        "cmath.range_loop_terminator"() : () -> ()
      }) : (i32, i32, i32) -> ()
      "cmath.conditional_branch"(%c)[^yes, ^no] : (i1) -> ()
    ^yes:
      %a = std.constant 1.0 : f32
      std.return %a : f32
    ^no:
      %b = std.constant 0.0 : f32
      std.return %b : f32
    }
  )";
  OwningOpRef M = parseSourceString(Ctx, Input, SrcMgr, Diags);
  if (!M) {
    std::cerr << Diags.renderAll();
    return 1;
  }
  DiagnosticEngine V;
  if (failed(M->verify(V))) {
    std::cerr << V.renderAll();
    return 1;
  }
  std::cout << "verified OK:\n" << printOpToString(M.get()) << "\n\n";

  // Show what the generated verifiers catch.
  struct BadCase {
    const char *What;
    const char *Source;
  };
  BadCase Cases[] = {
      {"wrong region terminator",
       R"(std.func @f(%n: i32) {
            "cmath.range_loop"(%n, %n, %n) ({
            ^bb0(%iv: i32):
              %c = std.constant 1.0 : f32
            }) : (i32, i32, i32) -> ()
            std.return
          })"},
      {"wrong induction variable type",
       R"(std.func @f(%n: i32) {
            "cmath.range_loop"(%n, %n, %n) ({
            ^bb0(%iv: i64):
              "cmath.range_loop_terminator"() : () -> ()
            }) : (i32, i32, i32) -> ()
            std.return
          })"},
      {"conditional_branch not last in block",
       R"(std.func @f(%c: i1) {
            "cmath.conditional_branch"(%c)[^a, ^a] : (i1) -> ()
            %x = std.constant 1.0 : f32
            std.return
          ^a:
            std.return
          })"},
  };
  for (const BadCase &Case : Cases) {
    DiagnosticEngine CaseDiags(&SrcMgr);
    OwningOpRef Bad = parseSourceString(Ctx, Case.Source, SrcMgr,
                                        CaseDiags);
    DiagnosticEngine BadV;
    if (Bad && succeeded(Bad->verify(BadV))) {
      std::cerr << "expected '" << Case.What << "' to be rejected!\n";
      return 1;
    }
    const auto &Ds = Bad ? BadV.getDiagnostics()
                         : CaseDiags.getDiagnostics();
    std::cout << "rejected (" << Case.What << "): "
              << (Ds.empty() ? "?" : Ds.front().getMessage()) << "\n";
  }
  return 0;
}
