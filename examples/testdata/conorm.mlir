// Listing 1a of the paper: the unoptimized conorm function.
std.func @conorm(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>) -> f32 {
  %norm_p = cmath.norm %p : f32
  %norm_q = cmath.norm %q : f32
  %pq = std.mulf %norm_p, %norm_q : f32
  std.return %pq : f32
}
