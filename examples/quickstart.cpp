//===- quickstart.cpp - IRDL in five minutes ------------------------------===//
///
/// The Section 3 flow end to end:
///   1. Define a dialect in IRDL (inline here; see dialects/*.irdl for
///      file-based specs).
///   2. Register it into an IRContext at runtime — no recompilation.
///   3. Build IR with OpBuilder against the dynamically loaded ops.
///   4. Run the IRDL-generated verifiers.
///   5. Print, parse back, and print again.
///
/// Run: build/examples/quickstart

#include "ir/Block.h"
#include "ir/Builder.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "irdl/IRDL.h"

#include <iostream>

using namespace irdl;

int main() {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);

  // 1-2. Define and register a dialect at runtime.
  const char *DialectSource = R"(
    Dialect demo {
      Type tensor1d {
        Parameters (elem: !AnyOf<!f32, !f64>, size: uint32_t)
        Summary "A one-dimensional tensor"
      }
      Operation fill {
        ConstraintVar (!T: !tensor1d)
        Operands (value: !AnyOf<!f32, !f64>)
        Results (res: !T)
        Summary "Broadcast a scalar into a tensor"
      }
      Operation dot {
        ConstraintVar (!T: !tensor1d)
        Operands (lhs: !T, rhs: !T)
        Results (res: !f32)
        Summary "Dot product"
      }
    }
  )";
  auto Module = loadIRDL(Ctx, DialectSource, SrcMgr, Diags);
  if (!Module) {
    std::cerr << Diags.renderAll();
    return 1;
  }
  std::cout << "registered dialect 'demo' with "
            << Module->getDialects()[0]->Ops.size() << " ops and "
            << Module->getDialects()[0]->Types.size() << " type\n\n";

  // 3. Build a function that fills two tensors and computes their dot
  //    product, using the dynamically registered ops.
  Type F32 = Ctx.getFloatType(32);
  Type Tensor = Ctx.getType(
      Ctx.resolveTypeDef("demo.tensor1d"),
      {ParamValue(F32),
       ParamValue(IntVal{32, Signedness::Unsigned, 16})});

  OperationState FuncState(Ctx, Ctx.resolveOpDef("std.func"));
  FuncState.addAttribute("sym_name", Ctx.getStringAttr("demo_main"));
  FuncState.addAttribute(
      "function_type",
      Ctx.getTypeAttr(Ctx.getFunctionType({F32, F32}, {F32})));
  Region *Body = FuncState.addRegion();
  Block *Entry = &Body->emplaceBlock();
  Value A = Entry->addArgument(F32);
  Value B = Entry->addArgument(F32);

  OpBuilder Builder(&Ctx);
  Builder.setInsertionPointToEnd(Entry);
  Operation *FillA = Builder.create("demo.fill", {A}, {Tensor});
  Operation *FillB = Builder.create("demo.fill", {B}, {Tensor});
  Operation *Dot = Builder.create(
      "demo.dot", {FillA->getResult(0), FillB->getResult(0)}, {F32});
  Builder.create("std.return", {Dot->getResult(0)}, {});

  OwningOpRef Func(Operation::create(FuncState));

  // 4. Verify: the constraint variable forces both dot operands to be the
  //    same tensor type; the generated verifier checks it.
  DiagnosticEngine VerifyDiags;
  if (failed(Func->verify(VerifyDiags))) {
    std::cerr << "verification failed:\n" << VerifyDiags.renderAll();
    return 1;
  }
  std::cout << "verified OK. IR:\n" << printOpToString(Func.get())
            << "\n\n";

  // Break it on purpose to show the generated diagnostics.
  Dot->getResult(0).setType(Ctx.getFloatType(64));
  DiagnosticEngine BrokenDiags;
  if (failed(Func->verify(BrokenDiags)))
    std::cout << "as expected, a broken op is rejected:\n  "
              << BrokenDiags.getDiagnostics()[0].getMessage() << "\n\n";
  Dot->getResult(0).setType(F32);

  // 5. Round-trip through the textual format.
  std::string Text = printOpToString(Func.get());
  OwningOpRef Reparsed = parseSourceString(Ctx, Text, SrcMgr, Diags);
  if (!Reparsed) {
    std::cerr << Diags.renderAll();
    return 1;
  }
  std::cout << "round-tripped through text successfully ("
            << Text.size() << " bytes)\n";
  return 0;
}
