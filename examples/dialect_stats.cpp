//===- dialect_stats.cpp - The "IR Statistics" tool of Figure 1 -----------===//
///
/// Loads one or more .irdl files and prints the introspection data the
/// paper's evaluation is built on: per-dialect op/type/attr counts,
/// operand/result/attribute/region shape distributions, variadic usage,
/// and the IRDL vs IRDL-C++ expressibility classification — demonstrating
/// that IRDL's self-contained specs make IRs "easy to introspect"
/// (Section 3).
///
/// Run: build/examples/dialect_stats [file.irdl ...]
///      (defaults to every bundled dialect in dialects/)

#include "analysis/DialectStatistics.h"
#include "analysis/Render.h"
#include "irdl/IRDL.h"

#include <filesystem>
#include <iostream>

using namespace irdl;

int main(int argc, char **argv) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);

  std::vector<std::string> Paths;
  if (argc > 1) {
    for (int I = 1; I < argc; ++I)
      Paths.push_back(argv[I]);
  } else {
    for (const auto &Entry :
         std::filesystem::directory_iterator(IRDL_DIALECTS_DIR))
      if (Entry.path().extension() == ".irdl")
        Paths.push_back(Entry.path().string());
    std::sort(Paths.begin(), Paths.end());
  }

  IRDLModule All;
  for (const std::string &Path : Paths) {
    auto Module = loadIRDLFile(Ctx, Path, SrcMgr, Diags);
    if (!Module) {
      std::cerr << "failed to load " << Path << ":\n" << Diags.renderAll();
      return 1;
    }
    All.append(std::move(*Module));
  }

  CorpusStatistics Stats = CorpusStatistics::compute(All.Dialects);

  TextTable Summary({"dialect", "ops", "types", "attrs", "terminators",
                     "variadic ops", "region ops", "IRDL-C++ ops"});
  for (const DialectStatistics &D : Stats.getDialects()) {
    unsigned Terminators = 0, Variadic = 0, Regions = 0, Cpp = 0;
    for (const OpRecord &R : D.Ops) {
      Terminators += R.IsTerminator;
      Variadic += R.NumVariadicOperandDefs || R.NumVariadicResultDefs;
      Regions += R.NumRegionDefs > 0;
      Cpp += R.NeedsCppVerifier || !R.LocalConstraintsInIRDL;
    }
    Summary.addRow({D.Name, std::to_string(D.numOps()),
                    std::to_string(D.numTypes()),
                    std::to_string(D.numAttrs()),
                    std::to_string(Terminators), std::to_string(Variadic),
                    std::to_string(Regions), std::to_string(Cpp)});
  }
  Summary.print(std::cout);

  Distribution Operands = Stats.operandCountDist();
  std::cout << "\noperand shapes: ";
  for (unsigned B = 0; B < 4; ++B)
    std::cout << (B ? ", " : "") << (B == 3 ? "3+" : std::to_string(B))
              << " -> " << formatPercent(Operands.fraction(B), 1);
  std::cout << "\n";

  // Per-op detail.
  for (const auto &D : All.Dialects) {
    std::cout << "\ndialect " << D->Name << ":\n";
    for (const OpSpec &Op : D->Ops) {
      std::cout << "  " << D->Name << "." << Op.Name << " (";
      std::cout << Op.Operands.size() << " operands, "
                << Op.Results.size() << " results";
      if (!Op.Attributes.empty())
        std::cout << ", " << Op.Attributes.size() << " attrs";
      if (!Op.Regions.empty())
        std::cout << ", " << Op.Regions.size() << " regions";
      if (Op.isTerminator())
        std::cout << ", terminator";
      std::cout << ")";
      if (!Op.Summary.empty())
        std::cout << " — " << Op.Summary;
      std::cout << "\n";
    }
  }
  return 0;
}
