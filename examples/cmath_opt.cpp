//===- cmath_opt.cpp - The paper's Listing 1, end to end ------------------===//
///
/// Loads the cmath dialect from dialects/cmath.irdl, parses the `conorm`
/// function of Listing 1a, and applies the domain-specific peephole the
/// paper motivates: |p|*|q| = |p*q|, i.e.
///     mulf(norm(p), norm(q))  =>  norm(mul(p, q))
/// using the dynamic pattern-rewriting flow of Section 3 — without any
/// compiled-in knowledge of cmath.
///
/// Run: build/examples/cmath_opt [path/to/cmath.irdl]

#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "ir/Rewrite.h"
#include "irdl/IRDL.h"

#include <iostream>

using namespace irdl;

namespace {

struct ConormPattern : RewritePattern {
  ConormPattern() : RewritePattern("std.mulf") {}

  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    Operation *L = Op->getOperand(0).getDefiningOp();
    Operation *R = Op->getOperand(1).getDefiningOp();
    auto IsNorm = [](Operation *N) {
      return N && N->getName().str() == "cmath.norm";
    };
    if (!IsNorm(L) || !IsNorm(R))
      return failure();
    // The norms must be over complex numbers of the same type.
    if (L->getOperand(0).getType() != R->getOperand(0).getType())
      return failure();
    IRContext *Ctx = Rewriter.getContext();

    OperationState MulState(*Ctx, Ctx->resolveOpDef("cmath.mul"), Op->getLoc());
    MulState.Operands = {L->getOperand(0), R->getOperand(0)};
    MulState.ResultTypes = {L->getOperand(0).getType()};
    Operation *Mul = Rewriter.createOp(MulState);

    OperationState NormState(*Ctx, Ctx->resolveOpDef("cmath.norm"),
                             Op->getLoc());
    NormState.Operands = {Mul->getResult(0)};
    NormState.ResultTypes = {Op->getResult(0).getType()};
    Operation *Norm = Rewriter.createOp(NormState);

    Rewriter.replaceOp(Op, {Norm->getResult(0)});
    return success();
  }
};

} // namespace

int main(int argc, char **argv) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);

  std::string Path = argc > 1
                         ? argv[1]
                         : std::string(IRDL_DIALECTS_DIR) + "/cmath.irdl";
  auto Module = loadIRDLFile(Ctx, Path, SrcMgr, Diags);
  if (!Module) {
    std::cerr << Diags.renderAll();
    return 1;
  }

  // Listing 1a: the unoptimized conorm.
  const char *Input = R"(
    std.func @conorm(%p: !cmath.complex<f32>, %q: !cmath.complex<f32>)
        -> f32 {
      %norm_p = cmath.norm %p : f32
      %norm_q = cmath.norm %q : f32
      %pq = std.mulf %norm_p, %norm_q : f32
      std.return %pq : f32
    }
  )";
  OwningOpRef M = parseSourceString(Ctx, Input, SrcMgr, Diags);
  if (!M) {
    std::cerr << Diags.renderAll();
    return 1;
  }
  DiagnosticEngine V;
  if (failed(M->verify(V))) {
    std::cerr << V.renderAll();
    return 1;
  }

  std::cout << "before optimization (Listing 1a):\n"
            << printOpToString(M.get()) << "\n\n";

  RewritePatternSet Patterns(&Ctx);
  Patterns.add<ConormPattern>();
  RewriteStatistics Stats = applyPatternsGreedily(M.get(), Patterns);
  unsigned Erased = eraseDeadOps(M.get(), {"cmath.norm", "cmath.mul"});

  std::cout << "applied " << Stats.NumRewrites << " rewrite(s), erased "
            << Erased << " dead op(s)\n\n";

  DiagnosticEngine V2;
  if (failed(M->verify(V2))) {
    std::cerr << "optimized IR failed to verify:\n" << V2.renderAll();
    return 1;
  }
  std::cout << "after optimization (Listing 1b):\n"
            << printOpToString(M.get()) << "\n";
  return 0;
}
