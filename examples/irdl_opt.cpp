//===- irdl_opt.cpp - An mlir-opt-style driver over dynamic dialects ------===//
///
/// The full Section 3 story as a command-line tool: dialects come from
/// .irdl files given on the command line (no recompilation), the IR comes
/// from a file or stdin, and a pass pipeline (verification, DCE, the
/// cmath conorm peephole) runs over it.
///
/// Usage:
///   irdl_opt [--dialect file.irdl]... [--pass dce|conorm]...
///            [--generic] [--verify-each=0|1] [--emit-bytecode[=FILE]]
///            [--mt=0|1|N] [--compiled-constraints=0|1] [--timing]
///            [--stats] [--stats-json=FILE] [--trace-json=FILE]
///            [--metrics] [--metrics-json=FILE] [--profile-constraints]
///            [--spec-cache-dir=DIR] [input.mlir]
///
/// With no --dialect, loads dialects/cmath.irdl. With no input, reads
/// stdin. Unknown flags and unknown pass names are hard errors. Both
/// --dialect files and the input may be binary `.irbc` bytecode
/// (docs/serialization.md) — the format is sniffed from the buffer's
/// magic, never from the file extension. The observability flags
/// (docs/observability.md):
///
///   --mt=0|1|N         thread count for verification and function
///                      passes (0 = auto, 1 = off; overrides the
///                      IRDL_NUM_THREADS environment variable)
///   --compiled-constraints=0|1
///                      constraint engine: 1 (default) verifies through
///                      the compiled bytecode programs, 0 through the
///                      reference tree interpreter (docs/constraint-
///                      compiler.md)
///   --timing           print a hierarchical wall-time tree (stderr)
///   --stats            print the statistics registry (stderr)
///   --stats-json=FILE  write the statistics registry as JSON (sorted by
///                      group/name for deterministic diffs)
///   --trace-json=FILE  write a chrome://tracing / Perfetto trace
///   --metrics          collect runtime metrics (counters/gauges/latency
///                      histograms) and print the Prometheus text
///                      exposition to stderr
///   --metrics-json=FILE
///                      collect runtime metrics and write them as JSON
///                      (implies collection like --metrics)
///   --profile-constraints
///                      time every compiled-constraint execution and
///                      print the hottest constraint programs (stderr)
///   --emit-bytecode    write the result module (plus every dialect
///                      loaded from text) as bytecode instead of text;
///                      with =FILE to disk, otherwise to stdout
///   --spec-cache-dir=DIR
///                      cache compiled dialect specs on disk, keyed by
///                      the content hash of their source: a hit replaces
///                      the IRDL frontend with an mmap'd bytecode load
///                      whose compiled constraint programs alias the
///                      mapping (docs/serialization.md)
///
/// Examples:
///
///   echo '%c = std.constant 1.5 : f32' | build/examples/irdl_opt
///   build/examples/irdl_opt --timing --pass conorm --pass dce test.mlir
///   build/examples/irdl_opt --emit-bytecode=out.irbc test.mlir
///   build/examples/irdl_opt out.irbc   # reads dialects + IR back

#include "bytecode/Bytecode.h"
#include "bytecode/SpecCache.h"
#include "ir/Block.h"
#include "ir/IRParser.h"
#include "ir/Pass.h"
#include "ir/Printer.h"
#include "ir/Region.h"
#include "irdl/ConstraintCompiler.h"
#include "irdl/ConstraintProfiler.h"
#include "irdl/IRDL.h"
#include "support/File.h"
#include "support/Hashing.h"
#include "support/MappedFile.h"
#include "support/Metrics.h"
#include "support/Signal.h"
#include "support/Statistic.h"
#include "support/Threading.h"
#include "support/Timing.h"

#include <atomic>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace irdl;

namespace {

/// The Listing 1 peephole, as in cmath_opt.cpp.
struct ConormPattern : RewritePattern {
  ConormPattern() : RewritePattern("std.mulf") {}

  LogicalResult matchAndRewrite(Operation *Op,
                                PatternRewriter &Rewriter) const override {
    Operation *L = Op->getOperand(0).getDefiningOp();
    Operation *R = Op->getOperand(1).getDefiningOp();
    auto IsNorm = [](Operation *N) {
      return N && N->getName().str() == "cmath.norm";
    };
    if (!IsNorm(L) || !IsNorm(R) ||
        L->getOperand(0).getType() != R->getOperand(0).getType())
      return failure();
    IRContext *Ctx = Rewriter.getContext();
    OperationState MulState(*Ctx, Ctx->resolveOpDef("cmath.mul"), Op->getLoc());
    MulState.Operands = {L->getOperand(0), R->getOperand(0)};
    MulState.ResultTypes = {L->getOperand(0).getType()};
    Operation *Mul = Rewriter.createOp(MulState);
    OperationState NormState(*Ctx, Ctx->resolveOpDef("cmath.norm"),
                             Op->getLoc());
    NormState.Operands = {Mul->getResult(0)};
    NormState.ResultTypes = {Op->getResult(0).getType()};
    Operation *Norm = Rewriter.createOp(NormState);
    Rewriter.replaceOp(Op, {Norm->getResult(0)});
    return success();
  }
};

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> DialectFiles;
  std::vector<std::string> PassNames;
  std::string InputFile;
  std::string TraceJsonFile;
  std::string BytecodeFile;
  std::string StatsJsonFile;
  std::string MetricsJsonFile;
  std::string SpecCacheDir;
  bool EmitBytecode = false;
  bool Generic = false;
  bool Timing = false;
  bool Stats = false;
  bool Metrics = false;
  bool ProfileConstraints = false;
  bool VerifyEach = true;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto NextValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::cerr << "missing value after " << Arg << "\n";
        std::exit(1);
      }
      return argv[++I];
    };
    if (Arg == "--dialect")
      DialectFiles.push_back(NextValue());
    else if (Arg == "--pass")
      PassNames.push_back(NextValue());
    else if (Arg == "--generic")
      Generic = true;
    else if (Arg == "--timing")
      Timing = true;
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--metrics")
      Metrics = true;
    else if (Arg == "--profile-constraints")
      ProfileConstraints = true;
    else if (Arg.rfind("--metrics-json=", 0) == 0) {
      MetricsJsonFile = Arg.substr(std::string("--metrics-json=").size());
      if (MetricsJsonFile.empty()) {
        std::cerr << "--metrics-json= requires a file name\n";
        return 1;
      }
    }
    else if (Arg.rfind("--stats-json=", 0) == 0) {
      StatsJsonFile = Arg.substr(std::string("--stats-json=").size());
      if (StatsJsonFile.empty()) {
        std::cerr << "--stats-json= requires a file name\n";
        return 1;
      }
    }
    else if (Arg.rfind("--trace-json=", 0) == 0 ||
             Arg == "--trace-json") {
      TraceJsonFile =
          Arg == "--trace-json"
              ? NextValue()
              : Arg.substr(std::string("--trace-json=").size());
      if (TraceJsonFile.empty()) {
        std::cerr << "--trace-json requires a file name\n";
        return 1;
      }
    }
    else if (Arg.rfind("--spec-cache-dir=", 0) == 0) {
      SpecCacheDir = Arg.substr(std::string("--spec-cache-dir=").size());
      if (SpecCacheDir.empty()) {
        std::cerr << "--spec-cache-dir= requires a directory name\n";
        return 1;
      }
    }
    else if (Arg == "--emit-bytecode")
      EmitBytecode = true;
    else if (Arg.rfind("--emit-bytecode=", 0) == 0) {
      EmitBytecode = true;
      BytecodeFile = Arg.substr(std::string("--emit-bytecode=").size());
      if (BytecodeFile.empty()) {
        std::cerr << "--emit-bytecode= requires a file name\n";
        return 1;
      }
    }
    else if (Arg.rfind("--mt=", 0) == 0) {
      auto N = parseThreadCountValue(Arg.substr(std::string("--mt=").size()));
      if (!N) {
        std::cerr << "invalid value '"
                  << Arg.substr(std::string("--mt=").size())
                  << "' for --mt (expected a non-negative integer)\n";
        return 1;
      }
      setGlobalThreadCount(*N);
    }
    else if (Arg.rfind("--compiled-constraints=", 0) == 0) {
      std::string V =
          Arg.substr(std::string("--compiled-constraints=").size());
      if (V != "0" && V != "1") {
        std::cerr << "invalid value '" << V
                  << "' for --compiled-constraints (expected 0 or 1)\n";
        return 1;
      }
      setCompiledConstraintsEnabled(V == "1");
    }
    else if (Arg.rfind("--verify-each=", 0) == 0) {
      std::string V = Arg.substr(std::string("--verify-each=").size());
      if (V == "1" || V == "true")
        VerifyEach = true;
      else if (V == "0" || V == "false")
        VerifyEach = false;
      else {
        std::cerr << "invalid value '" << V
                  << "' for --verify-each (expected 0 or 1)\n";
        return 1;
      }
    } else if (Arg == "--help" || Arg == "-h") {
      std::cout << "usage: irdl_opt [--dialect f.irdl]... "
                   "[--pass dce|conorm]... [--generic]\n"
                   "                [--verify-each=0|1] "
                   "[--emit-bytecode[=FILE]] [--mt=0|1|N]\n"
                   "                [--compiled-constraints=0|1] "
                   "[--timing] [--stats]\n"
                   "                [--stats-json=FILE] [--trace-json=FILE] "
                   "[--metrics]\n"
                   "                [--metrics-json=FILE] "
                   "[--profile-constraints]\n"
                   "                [--spec-cache-dir=DIR] [input]\n";
      return 0;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::cerr << "unknown option " << Arg << " (see --help)\n";
      return 1;
    } else {
      InputFile = Arg;
    }
  }
  // Read the input up front: bytecode buffers carry their own dialect
  // specs, so the cmath.irdl default only applies to textual input.
  std::string Input;
  if (InputFile.empty()) {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Input = SS.str();
  } else {
    std::string Error;
    if (failed(readFileToString(InputFile, Input, Error))) {
      std::cerr << "cannot read " << InputFile << ": " << Error << "\n";
      return 1;
    }
  }
  if (DialectFiles.empty() && !isBytecodeBuffer(Input))
    DialectFiles.push_back(std::string(IRDL_DIALECTS_DIR) +
                           "/cmath.irdl");

  // Install the timer group before any timed work so the frontend,
  // parser, pipeline, and verifier scopes all land in one tree.
  TimerGroup Timers("irdl_opt");
  bool WantTiming = Timing || !TraceJsonFile.empty();
  if (WantTiming) {
    setActiveTimerGroup(&Timers);
#if !IRDL_ENABLE_TIMING
    std::cerr << "warning: built with IRDL_ENABLE_TIMING=OFF; timing "
                 "report and trace will be empty\n";
#endif
  }
  bool WantMetrics = Metrics || !MetricsJsonFile.empty();
  if (WantMetrics)
    setMetricsEnabled(true);
  if (ProfileConstraints)
    setConstraintProfilingEnabled(true);

  // Declared before the report guard so it is destroyed after it: the
  // constraint profiler holds weak references to programs owned by the
  // registered dialect specs, so the hottest-constraints report must
  // render while the context is still alive.
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);

  // Emit reports on every exit path: the destructor covers normal returns
  // and early errors, and a SIGINT/SIGTERM handler (installed below)
  // calls flush() directly so --metrics-json/--trace-json artifacts are
  // not dropped on interrupt. The atomic exchange makes the flush run at
  // most once whichever path gets there first.
  struct ReportGuard {
    TimerGroup &Timers;
    bool Timing, Stats, Metrics, ProfileConstraints;
    std::string TraceJsonFile, StatsJsonFile, MetricsJsonFile;
    std::atomic<bool> Flushed{false};
    ~ReportGuard() { flush(); }
    void flush() {
      if (Flushed.exchange(true))
        return;
      setActiveTimerGroup(nullptr);
      if (Timing)
        std::cerr << Timers.renderTree();
      if (Stats)
        std::cerr << StatisticRegistry::instance().renderTable();
      if (!StatsJsonFile.empty()) {
        std::ofstream Out(StatsJsonFile);
        if (!Out)
          std::cerr << "cannot write stats to " << StatsJsonFile << "\n";
        else
          Out << StatisticRegistry::instance().renderJson() << "\n";
      }
      if (Metrics)
        std::cerr << MetricsRegistry::instance().renderPrometheus();
      if (!MetricsJsonFile.empty()) {
        std::ofstream Out(MetricsJsonFile);
        if (!Out)
          std::cerr << "cannot write metrics to " << MetricsJsonFile << "\n";
        else
          Out << MetricsRegistry::instance().renderJson() << "\n";
      }
      if (ProfileConstraints)
        std::cerr << ConstraintProfiler::instance().renderReport();
      if (!TraceJsonFile.empty()) {
        std::ofstream Out(TraceJsonFile);
        if (!Out)
          std::cerr << "cannot write trace to " << TraceJsonFile << "\n";
        else
          Out << Timers.renderTraceJson("irdl_opt");
      }
    }
  } Guard{Timers,        Timing,        Stats,
          Metrics,       ProfileConstraints,
          TraceJsonFile, StatsJsonFile, MetricsJsonFile};
  installExitFlushHandler([&Guard]() { Guard.flush(); });

  // Dialects loaded from textual IRDL are re-emitted by --emit-bytecode
  // so the resulting .irbc is self-contained.
  IRDLModule LoadedSpecs;
  {
    IRDL_TIME_SCOPE("load-dialects");
    for (const std::string &Path : DialectFiles) {
      std::string Error;
      std::shared_ptr<MappedFile> File = MappedFile::open(Path, Error);
      if (!File) {
        std::cerr << "cannot read dialect file " << Path << ": " << Error
                  << "\n";
        return 1;
      }
      if (isBytecodeBuffer(File->data())) {
        // Zero-copy: compiled programs in the buffer alias the mapping,
        // which they keep alive past this scope.
        BytecodeReader Reader(Ctx, Diags);
        BytecodeReadResult Result;
        if (failed(Reader.read(File->data(), Result, Path, File))) {
          std::cerr << Diags.renderAll();
          return 1;
        }
        if (Result.Specs)
          LoadedSpecs.append(std::move(*Result.Specs));
        continue;
      }
      std::string Buffer(File->data());
      File.reset();
      if (!SpecCacheDir.empty()) {
        // Content-hash cache: a prior run already parsed, compiled, and
        // serialized this exact text — mmap-load the compiled entry
        // instead of running the frontend.
        uint64_t Hash = hashSpecBuffer(Buffer);
        BytecodeReadResult Cached;
        if (succeeded(loadCachedSpec(SpecCacheDir, Hash, Ctx, Diags,
                                     Cached)) &&
            Cached.Specs) {
          LoadedSpecs.append(std::move(*Cached.Specs));
          continue;
        }
        auto Loaded = loadIRDL(Ctx, Buffer, SrcMgr, Diags, {}, Path);
        if (!Loaded) {
          std::cerr << Diags.renderAll();
          return 1;
        }
        if (failed(storeCachedSpec(SpecCacheDir, Hash, *Loaded, Diags)))
          std::cerr << Diags.renderAll();
        LoadedSpecs.append(std::move(*Loaded));
        continue;
      }
      auto Loaded = loadIRDL(Ctx, Buffer, SrcMgr, Diags, {}, Path);
      if (!Loaded) {
        std::cerr << Diags.renderAll();
        return 1;
      }
      LoadedSpecs.append(std::move(*Loaded));
    }
  }

  OwningOpRef M;
  if (isBytecodeBuffer(Input)) {
    BytecodeReader Reader(Ctx, Diags);
    BytecodeReadResult Result;
    if (failed(Reader.read(Input, Result,
                           InputFile.empty() ? "<stdin>" : InputFile))) {
      std::cerr << Diags.renderAll();
      return 1;
    }
    if (!Result.Module) {
      std::cerr << (InputFile.empty() ? "<stdin>" : InputFile)
                << ": bytecode buffer contains no IR module\n";
      return 1;
    }
    if (Result.Specs)
      LoadedSpecs.append(std::move(*Result.Specs));
    M = std::move(Result.Module);
  } else {
    M = parseSourceString(Ctx, Input, SrcMgr, Diags,
                          InputFile.empty() ? "<stdin>" : InputFile);
  }
  if (!M) {
    std::cerr << Diags.renderAll();
    return 1;
  }

  PassManager PM(&Ctx);
  PM.enableVerifier(VerifyEach);
  if (WantTiming)
    PM.addInstrumentation<PassTimingInstrumentation>(&Timers);
  if (WantMetrics)
    PM.addInstrumentation<MetricsInstrumentation>();
  for (const std::string &Name : PassNames) {
    if (Name == "dce") {
      PM.addPass<DeadCodeEliminationPass>(
          std::vector<std::string>{},
          /*AssumeRegisteredOpsPure=*/true);
    } else if (Name == "conorm") {
      auto Patterns = std::make_shared<RewritePatternSet>(&Ctx);
      Patterns->add<ConormPattern>();
      PM.addPass<GreedyRewritePass>("conorm", Patterns);
    } else {
      std::cerr << "unknown pass '" << Name << "' (have: dce, conorm)\n";
      return 1;
    }
  }

  DiagnosticEngine PipelineDiags(&SrcMgr);
  if (failed(PM.run(M.get(), PipelineDiags))) {
    std::cerr << PipelineDiags.renderAll();
    return 1;
  }

  if (EmitBytecode) {
    IRDL_TIME_SCOPE("emit-bytecode");
    if (!BytecodeFile.empty()) {
      DiagnosticEngine WriteDiags;
      if (failed(writeBytecodeFile(BytecodeFile, M.get(), &LoadedSpecs,
                                   WriteDiags))) {
        std::cerr << WriteDiags.renderAll();
        return 1;
      }
    } else {
      BytecodeWriter Writer;
      Writer.addModuleSpecs(LoadedSpecs);
      Writer.setModule(M.get());
      std::cout << Writer.write();
    }
    return 0;
  }

  {
    IRDL_TIME_SCOPE("print-output");
    PrintOptions Opts;
    Opts.GenericForm = Generic;
    std::cout << printOpToString(M.get(), Opts) << "\n";
  }
  return 0;
}
