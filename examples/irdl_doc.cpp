//===- irdl_doc.cpp - Markdown documentation generator --------------------===//
///
/// Generates Markdown reference documentation for dialects from their
/// IRDL specs — the "well-defined, well-documented interface" tooling the
/// paper's Section 3 motivates. Summaries come from the `Summary`
/// directives; signatures are rendered from the resolved constraints.
///
/// Run: build/examples/irdl_doc [file.irdl ...] (defaults to dialects/)

#include "irdl/IRDL.h"

#include <filesystem>
#include <iostream>

using namespace irdl;

namespace {

void emitConstraint(std::ostream &OS, const ConstraintPtr &C) {
  OS << "`" << C->str() << "`";
}

void emitDialectDoc(std::ostream &OS, const DialectSpec &D) {
  OS << "# Dialect `" << D.Name << "`\n\n";

  if (!D.Enums.empty()) {
    OS << "## Enums\n\n";
    for (const EnumSpec &E : D.Enums) {
      OS << "### `" << D.Name << "." << E.Name << "`\n\n";
      OS << "Constructors: ";
      for (size_t I = 0; I < E.Cases.size(); ++I)
        OS << (I ? ", " : "") << "`" << E.Cases[I] << "`";
      OS << "\n\n";
    }
  }

  auto EmitTypeOrAttrSection = [&OS, &D](
                                   const std::vector<TypeOrAttrSpec> &Defs,
                                   const char *Title, char Sigil) {
    if (Defs.empty())
      return;
    OS << "## " << Title << "\n\n";
    for (const TypeOrAttrSpec &T : Defs) {
      OS << "### `" << Sigil << D.Name << "." << T.Name << "`";
      if (!T.Params.empty()) {
        OS << " `<";
        for (size_t I = 0; I < T.Params.size(); ++I)
          OS << (I ? ", " : "") << T.Params[I].Name;
        OS << ">`";
      }
      OS << "\n\n";
      if (!T.Summary.empty())
        OS << T.Summary << "\n\n";
      if (!T.Params.empty()) {
        OS << "| parameter | constraint |\n|---|---|\n";
        for (const ParamSpec &P : T.Params) {
          OS << "| `" << P.Name << "` | ";
          emitConstraint(OS, P.Constr);
          OS << " |\n";
        }
        OS << "\n";
      }
      if (!T.CppConstraintSrc.empty())
        OS << "Additional IRDL-C++ invariant: `" << T.CppConstraintSrc
           << "`\n\n";
    }
  };
  EmitTypeOrAttrSection(D.Types, "Types", '!');
  EmitTypeOrAttrSection(D.Attrs, "Attributes", '#');

  if (!D.Ops.empty()) {
    OS << "## Operations\n\n";
    for (const OpSpec &Op : D.Ops) {
      OS << "### `" << D.Name << "." << Op.Name << "`\n\n";
      if (!Op.Summary.empty())
        OS << Op.Summary << "\n\n";
      if (!Op.VarNames.empty()) {
        OS << "Constraint variables: ";
        for (size_t I = 0; I < Op.VarNames.size(); ++I) {
          OS << (I ? ", " : "") << "`!" << Op.VarNames[I] << ": "
             << Op.VarConstraints[I]->str() << "`";
        }
        OS << "\n\n";
      }
      auto EmitOperands = [&OS](const char *What,
                                const std::vector<OperandSpec> &Items) {
        if (Items.empty())
          return;
        OS << "| " << What << " | constraint |\n|---|---|\n";
        for (const OperandSpec &O : Items) {
          OS << "| `" << O.Name << "`";
          if (O.VK == VariadicKind::Variadic)
            OS << " (variadic)";
          else if (O.VK == VariadicKind::Optional)
            OS << " (optional)";
          OS << " | ";
          emitConstraint(OS, O.Constr);
          OS << " |\n";
        }
        OS << "\n";
      };
      EmitOperands("operand", Op.Operands);
      EmitOperands("result", Op.Results);
      if (!Op.Attributes.empty()) {
        OS << "| attribute | constraint |\n|---|---|\n";
        for (const ParamSpec &A : Op.Attributes) {
          OS << "| `" << A.Name << "` | ";
          emitConstraint(OS, A.Constr);
          OS << " |\n";
        }
        OS << "\n";
      }
      for (const RegionSpec &R : Op.Regions) {
        OS << "Region `" << R.Name << "`";
        if (!R.TerminatorOpName.empty())
          OS << " (single block, terminated by `" << R.TerminatorOpName
             << "`)";
        if (!R.Args.empty()) {
          OS << " with arguments ";
          for (size_t I = 0; I < R.Args.size(); ++I)
            OS << (I ? ", " : "") << "`" << R.Args[I].Name << ": "
               << R.Args[I].Constr->str() << "`";
        }
        OS << "\n\n";
      }
      if (Op.Successors) {
        OS << "Terminator";
        if (!Op.Successors->empty()) {
          OS << " with successors ";
          for (size_t I = 0; I < Op.Successors->size(); ++I)
            OS << (I ? ", " : "") << "`" << (*Op.Successors)[I] << "`";
        }
        OS << ".\n\n";
      }
      if (Op.HasFormat)
        OS << "Custom syntax: `" << Op.Name << " " << Op.FormatSrc
           << "`\n\n";
      if (!Op.CppConstraintSrc.empty())
        OS << "Additional IRDL-C++ invariant: `" << Op.CppConstraintSrc
           << "`\n\n";
    }
  }
}

} // namespace

int main(int argc, char **argv) {
  IRContext Ctx;
  SourceMgr SrcMgr;
  DiagnosticEngine Diags(&SrcMgr);

  std::vector<std::string> Paths;
  if (argc > 1) {
    for (int I = 1; I < argc; ++I)
      Paths.push_back(argv[I]);
  } else {
    for (const auto &Entry :
         std::filesystem::directory_iterator(IRDL_DIALECTS_DIR))
      if (Entry.path().extension() == ".irdl")
        Paths.push_back(Entry.path().string());
    std::sort(Paths.begin(), Paths.end());
  }

  for (const std::string &Path : Paths) {
    auto Module = loadIRDLFile(Ctx, Path, SrcMgr, Diags);
    if (!Module) {
      std::cerr << "failed to load " << Path << ":\n" << Diags.renderAll();
      return 1;
    }
    for (const auto &D : Module->getDialects())
      emitDialectDoc(std::cout, *D);
  }
  return 0;
}
