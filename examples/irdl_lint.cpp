//===- irdl_lint.cpp - An IRDL linter / pretty-printer --------------------===//
///
/// Tooling of the kind Figure 1 envisions: checks .irdl files (parse +
/// semantic analysis + registration, reporting rich diagnostics with
/// source carets) and optionally re-emits them through the IRDL
/// pretty-printer with aliases expanded and constraints normalized.
///
/// Run: build/examples/irdl_lint [--print] file.irdl ...

#include "irdl/IRDL.h"

#include <iostream>

using namespace irdl;

int main(int argc, char **argv) {
  bool Print = false;
  std::vector<std::string> Paths;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--print")
      Print = true;
    else
      Paths.push_back(Arg);
  }
  if (Paths.empty())
    Paths.push_back(std::string(IRDL_DIALECTS_DIR) + "/cmath.irdl");

  int Failures = 0;
  for (const std::string &Path : Paths) {
    // Each file gets a fresh context so lints are independent.
    IRContext Ctx;
    SourceMgr SrcMgr;
    DiagnosticEngine Diags(&SrcMgr);
    auto Module = loadIRDLFile(Ctx, Path, SrcMgr, Diags);
    if (!Module) {
      std::cout << Path << ": FAILED\n" << Diags.renderAll() << "\n";
      ++Failures;
      continue;
    }
    size_t Ops = Module->getNumOps();
    std::cout << Path << ": OK (" << Module->getDialects().size()
              << " dialect(s), " << Ops << " ops, "
              << Module->getNumTypes() << " types, "
              << Module->getNumAttrs() << " attrs)\n";

    // Style lints.
    for (const auto &D : Module->getDialects()) {
      for (const OpSpec &Op : D->Ops)
        if (Op.Summary.empty())
          std::cout << "  note: operation '" << D->Name << "." << Op.Name
                    << "' has no Summary\n";
      for (const TypeOrAttrSpec &T : D->Types)
        if (T.Summary.empty())
          std::cout << "  note: type '" << D->Name << "." << T.Name
                    << "' has no Summary\n";
    }

    if (Print)
      for (const auto &D : Module->getDialects())
        std::cout << "\n" << printDialectSpec(*D);
  }
  return Failures == 0 ? 0 : 1;
}
