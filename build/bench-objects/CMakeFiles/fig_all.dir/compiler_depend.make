# Empty compiler generated dependencies file for fig_all.
# This may be replaced when dependencies are built.
