file(REMOVE_RECURSE
  "../bench/fig_all"
  "../bench/fig_all.pdb"
  "CMakeFiles/fig_all.dir/fig_all.cpp.o"
  "CMakeFiles/fig_all.dir/fig_all.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
