file(REMOVE_RECURSE
  "../bench/table1_dialects"
  "../bench/table1_dialects.pdb"
  "CMakeFiles/table1_dialects.dir/table1_dialects.cpp.o"
  "CMakeFiles/table1_dialects.dir/table1_dialects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dialects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
