# Empty compiler generated dependencies file for table1_dialects.
# This may be replaced when dependencies are built.
