# Empty dependencies file for perf_irdl_frontend.
# This may be replaced when dependencies are built.
