file(REMOVE_RECURSE
  "../bench/perf_irdl_frontend"
  "../bench/perf_irdl_frontend.pdb"
  "CMakeFiles/perf_irdl_frontend.dir/perf_irdl_frontend.cpp.o"
  "CMakeFiles/perf_irdl_frontend.dir/perf_irdl_frontend.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_irdl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
