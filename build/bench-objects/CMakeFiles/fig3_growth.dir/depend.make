# Empty dependencies file for fig3_growth.
# This may be replaced when dependencies are built.
