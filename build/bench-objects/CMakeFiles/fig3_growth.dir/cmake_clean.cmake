file(REMOVE_RECURSE
  "../bench/fig3_growth"
  "../bench/fig3_growth.pdb"
  "CMakeFiles/fig3_growth.dir/fig3_growth.cpp.o"
  "CMakeFiles/fig3_growth.dir/fig3_growth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
