# Empty compiler generated dependencies file for perf_rewrite.
# This may be replaced when dependencies are built.
