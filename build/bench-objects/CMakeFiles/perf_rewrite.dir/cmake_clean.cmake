file(REMOVE_RECURSE
  "../bench/perf_rewrite"
  "../bench/perf_rewrite.pdb"
  "CMakeFiles/perf_rewrite.dir/perf_rewrite.cpp.o"
  "CMakeFiles/perf_rewrite.dir/perf_rewrite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
