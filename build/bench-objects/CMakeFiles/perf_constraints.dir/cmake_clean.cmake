file(REMOVE_RECURSE
  "../bench/perf_constraints"
  "../bench/perf_constraints.pdb"
  "CMakeFiles/perf_constraints.dir/perf_constraints.cpp.o"
  "CMakeFiles/perf_constraints.dir/perf_constraints.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
