# Empty dependencies file for perf_constraints.
# This may be replaced when dependencies are built.
