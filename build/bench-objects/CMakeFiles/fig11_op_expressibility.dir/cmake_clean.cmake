file(REMOVE_RECURSE
  "../bench/fig11_op_expressibility"
  "../bench/fig11_op_expressibility.pdb"
  "CMakeFiles/fig11_op_expressibility.dir/fig11_op_expressibility.cpp.o"
  "CMakeFiles/fig11_op_expressibility.dir/fig11_op_expressibility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_op_expressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
