# Empty dependencies file for fig11_op_expressibility.
# This may be replaced when dependencies are built.
