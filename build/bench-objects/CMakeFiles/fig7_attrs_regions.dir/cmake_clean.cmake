file(REMOVE_RECURSE
  "../bench/fig7_attrs_regions"
  "../bench/fig7_attrs_regions.pdb"
  "CMakeFiles/fig7_attrs_regions.dir/fig7_attrs_regions.cpp.o"
  "CMakeFiles/fig7_attrs_regions.dir/fig7_attrs_regions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_attrs_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
