# Empty dependencies file for fig7_attrs_regions.
# This may be replaced when dependencies are built.
