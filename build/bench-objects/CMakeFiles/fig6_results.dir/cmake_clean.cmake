file(REMOVE_RECURSE
  "../bench/fig6_results"
  "../bench/fig6_results.pdb"
  "CMakeFiles/fig6_results.dir/fig6_results.cpp.o"
  "CMakeFiles/fig6_results.dir/fig6_results.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
