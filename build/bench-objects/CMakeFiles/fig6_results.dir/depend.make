# Empty dependencies file for fig6_results.
# This may be replaced when dependencies are built.
