file(REMOVE_RECURSE
  "../bench/perf_parse"
  "../bench/perf_parse.pdb"
  "CMakeFiles/perf_parse.dir/perf_parse.cpp.o"
  "CMakeFiles/perf_parse.dir/perf_parse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
