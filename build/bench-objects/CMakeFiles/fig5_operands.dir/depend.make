# Empty dependencies file for fig5_operands.
# This may be replaced when dependencies are built.
