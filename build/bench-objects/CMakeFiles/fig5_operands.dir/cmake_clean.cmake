file(REMOVE_RECURSE
  "../bench/fig5_operands"
  "../bench/fig5_operands.pdb"
  "CMakeFiles/fig5_operands.dir/fig5_operands.cpp.o"
  "CMakeFiles/fig5_operands.dir/fig5_operands.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_operands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
