file(REMOVE_RECURSE
  "../bench/perf_uniquing"
  "../bench/perf_uniquing.pdb"
  "CMakeFiles/perf_uniquing.dir/perf_uniquing.cpp.o"
  "CMakeFiles/perf_uniquing.dir/perf_uniquing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_uniquing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
