# Empty compiler generated dependencies file for perf_uniquing.
# This may be replaced when dependencies are built.
