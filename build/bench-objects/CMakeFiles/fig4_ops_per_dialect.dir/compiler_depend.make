# Empty compiler generated dependencies file for fig4_ops_per_dialect.
# This may be replaced when dependencies are built.
