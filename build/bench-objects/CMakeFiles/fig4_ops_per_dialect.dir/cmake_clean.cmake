file(REMOVE_RECURSE
  "../bench/fig4_ops_per_dialect"
  "../bench/fig4_ops_per_dialect.pdb"
  "CMakeFiles/fig4_ops_per_dialect.dir/fig4_ops_per_dialect.cpp.o"
  "CMakeFiles/fig4_ops_per_dialect.dir/fig4_ops_per_dialect.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ops_per_dialect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
