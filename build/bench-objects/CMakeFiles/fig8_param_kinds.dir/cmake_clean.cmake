file(REMOVE_RECURSE
  "../bench/fig8_param_kinds"
  "../bench/fig8_param_kinds.pdb"
  "CMakeFiles/fig8_param_kinds.dir/fig8_param_kinds.cpp.o"
  "CMakeFiles/fig8_param_kinds.dir/fig8_param_kinds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_param_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
