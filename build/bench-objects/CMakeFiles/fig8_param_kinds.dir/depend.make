# Empty dependencies file for fig8_param_kinds.
# This may be replaced when dependencies are built.
