file(REMOVE_RECURSE
  "../bench/fig12_cpp_constraint_kinds"
  "../bench/fig12_cpp_constraint_kinds.pdb"
  "CMakeFiles/fig12_cpp_constraint_kinds.dir/fig12_cpp_constraint_kinds.cpp.o"
  "CMakeFiles/fig12_cpp_constraint_kinds.dir/fig12_cpp_constraint_kinds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cpp_constraint_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
