# Empty dependencies file for fig12_cpp_constraint_kinds.
# This may be replaced when dependencies are built.
