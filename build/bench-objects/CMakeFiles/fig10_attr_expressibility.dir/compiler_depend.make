# Empty compiler generated dependencies file for fig10_attr_expressibility.
# This may be replaced when dependencies are built.
