file(REMOVE_RECURSE
  "../bench/fig10_attr_expressibility"
  "../bench/fig10_attr_expressibility.pdb"
  "CMakeFiles/fig10_attr_expressibility.dir/fig10_attr_expressibility.cpp.o"
  "CMakeFiles/fig10_attr_expressibility.dir/fig10_attr_expressibility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_attr_expressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
