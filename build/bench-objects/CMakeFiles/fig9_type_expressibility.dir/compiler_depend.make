# Empty compiler generated dependencies file for fig9_type_expressibility.
# This may be replaced when dependencies are built.
