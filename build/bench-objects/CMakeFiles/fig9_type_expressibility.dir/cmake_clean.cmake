file(REMOVE_RECURSE
  "../bench/fig9_type_expressibility"
  "../bench/fig9_type_expressibility.pdb"
  "CMakeFiles/fig9_type_expressibility.dir/fig9_type_expressibility.cpp.o"
  "CMakeFiles/fig9_type_expressibility.dir/fig9_type_expressibility.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_type_expressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
