file(REMOVE_RECURSE
  "../bench/perf_verifier"
  "../bench/perf_verifier.pdb"
  "CMakeFiles/perf_verifier.dir/perf_verifier.cpp.o"
  "CMakeFiles/perf_verifier.dir/perf_verifier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
