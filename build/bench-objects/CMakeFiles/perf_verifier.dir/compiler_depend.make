# Empty compiler generated dependencies file for perf_verifier.
# This may be replaced when dependencies are built.
