file(REMOVE_RECURSE
  "libirdl_support.a"
)
