# Empty dependencies file for irdl_support.
# This may be replaced when dependencies are built.
