file(REMOVE_RECURSE
  "CMakeFiles/irdl_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/irdl_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/irdl_support.dir/SourceMgr.cpp.o"
  "CMakeFiles/irdl_support.dir/SourceMgr.cpp.o.d"
  "CMakeFiles/irdl_support.dir/StringExtras.cpp.o"
  "CMakeFiles/irdl_support.dir/StringExtras.cpp.o.d"
  "libirdl_support.a"
  "libirdl_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdl_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
