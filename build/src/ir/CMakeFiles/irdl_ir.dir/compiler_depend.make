# Empty compiler generated dependencies file for irdl_ir.
# This may be replaced when dependencies are built.
