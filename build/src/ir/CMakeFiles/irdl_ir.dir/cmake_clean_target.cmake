file(REMOVE_RECURSE
  "libirdl_ir.a"
)
