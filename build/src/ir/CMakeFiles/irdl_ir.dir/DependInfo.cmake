
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Block.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Block.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Block.cpp.o.d"
  "/root/repo/src/ir/BuiltinOps.cpp" "src/ir/CMakeFiles/irdl_ir.dir/BuiltinOps.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/BuiltinOps.cpp.o.d"
  "/root/repo/src/ir/Cloning.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Cloning.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Cloning.cpp.o.d"
  "/root/repo/src/ir/Context.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Context.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Context.cpp.o.d"
  "/root/repo/src/ir/Dialect.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Dialect.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Dialect.cpp.o.d"
  "/root/repo/src/ir/IRLexer.cpp" "src/ir/CMakeFiles/irdl_ir.dir/IRLexer.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/IRLexer.cpp.o.d"
  "/root/repo/src/ir/IRParser.cpp" "src/ir/CMakeFiles/irdl_ir.dir/IRParser.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/IRParser.cpp.o.d"
  "/root/repo/src/ir/Operation.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Operation.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Operation.cpp.o.d"
  "/root/repo/src/ir/Pass.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Pass.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Pass.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Printer.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Printer.cpp.o.d"
  "/root/repo/src/ir/Region.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Region.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Region.cpp.o.d"
  "/root/repo/src/ir/Rewrite.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Rewrite.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Rewrite.cpp.o.d"
  "/root/repo/src/ir/Types.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Types.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Types.cpp.o.d"
  "/root/repo/src/ir/Value.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Value.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Value.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/irdl_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/irdl_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/irdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
