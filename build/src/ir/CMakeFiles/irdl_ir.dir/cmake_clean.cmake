file(REMOVE_RECURSE
  "CMakeFiles/irdl_ir.dir/Block.cpp.o"
  "CMakeFiles/irdl_ir.dir/Block.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/BuiltinOps.cpp.o"
  "CMakeFiles/irdl_ir.dir/BuiltinOps.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Cloning.cpp.o"
  "CMakeFiles/irdl_ir.dir/Cloning.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Context.cpp.o"
  "CMakeFiles/irdl_ir.dir/Context.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Dialect.cpp.o"
  "CMakeFiles/irdl_ir.dir/Dialect.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/IRLexer.cpp.o"
  "CMakeFiles/irdl_ir.dir/IRLexer.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/IRParser.cpp.o"
  "CMakeFiles/irdl_ir.dir/IRParser.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Operation.cpp.o"
  "CMakeFiles/irdl_ir.dir/Operation.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Pass.cpp.o"
  "CMakeFiles/irdl_ir.dir/Pass.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Printer.cpp.o"
  "CMakeFiles/irdl_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Region.cpp.o"
  "CMakeFiles/irdl_ir.dir/Region.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Rewrite.cpp.o"
  "CMakeFiles/irdl_ir.dir/Rewrite.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Types.cpp.o"
  "CMakeFiles/irdl_ir.dir/Types.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Value.cpp.o"
  "CMakeFiles/irdl_ir.dir/Value.cpp.o.d"
  "CMakeFiles/irdl_ir.dir/Verifier.cpp.o"
  "CMakeFiles/irdl_ir.dir/Verifier.cpp.o.d"
  "libirdl_ir.a"
  "libirdl_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdl_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
