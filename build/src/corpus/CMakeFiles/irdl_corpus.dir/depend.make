# Empty dependencies file for irdl_corpus.
# This may be replaced when dependencies are built.
