file(REMOVE_RECURSE
  "libirdl_corpus.a"
)
