file(REMOVE_RECURSE
  "CMakeFiles/irdl_corpus.dir/Corpus.cpp.o"
  "CMakeFiles/irdl_corpus.dir/Corpus.cpp.o.d"
  "CMakeFiles/irdl_corpus.dir/CorpusData.cpp.o"
  "CMakeFiles/irdl_corpus.dir/CorpusData.cpp.o.d"
  "CMakeFiles/irdl_corpus.dir/Synthesizer.cpp.o"
  "CMakeFiles/irdl_corpus.dir/Synthesizer.cpp.o.d"
  "libirdl_corpus.a"
  "libirdl_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdl_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
