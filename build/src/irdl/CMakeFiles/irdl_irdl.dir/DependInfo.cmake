
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/irdl/Constraint.cpp" "src/irdl/CMakeFiles/irdl_irdl.dir/Constraint.cpp.o" "gcc" "src/irdl/CMakeFiles/irdl_irdl.dir/Constraint.cpp.o.d"
  "/root/repo/src/irdl/CppExpr.cpp" "src/irdl/CMakeFiles/irdl_irdl.dir/CppExpr.cpp.o" "gcc" "src/irdl/CMakeFiles/irdl_irdl.dir/CppExpr.cpp.o.d"
  "/root/repo/src/irdl/Format.cpp" "src/irdl/CMakeFiles/irdl_irdl.dir/Format.cpp.o" "gcc" "src/irdl/CMakeFiles/irdl_irdl.dir/Format.cpp.o.d"
  "/root/repo/src/irdl/IRDLLoader.cpp" "src/irdl/CMakeFiles/irdl_irdl.dir/IRDLLoader.cpp.o" "gcc" "src/irdl/CMakeFiles/irdl_irdl.dir/IRDLLoader.cpp.o.d"
  "/root/repo/src/irdl/IRDLParser.cpp" "src/irdl/CMakeFiles/irdl_irdl.dir/IRDLParser.cpp.o" "gcc" "src/irdl/CMakeFiles/irdl_irdl.dir/IRDLParser.cpp.o.d"
  "/root/repo/src/irdl/Registration.cpp" "src/irdl/CMakeFiles/irdl_irdl.dir/Registration.cpp.o" "gcc" "src/irdl/CMakeFiles/irdl_irdl.dir/Registration.cpp.o.d"
  "/root/repo/src/irdl/Sema.cpp" "src/irdl/CMakeFiles/irdl_irdl.dir/Sema.cpp.o" "gcc" "src/irdl/CMakeFiles/irdl_irdl.dir/Sema.cpp.o.d"
  "/root/repo/src/irdl/Spec.cpp" "src/irdl/CMakeFiles/irdl_irdl.dir/Spec.cpp.o" "gcc" "src/irdl/CMakeFiles/irdl_irdl.dir/Spec.cpp.o.d"
  "/root/repo/src/irdl/SpecPrinter.cpp" "src/irdl/CMakeFiles/irdl_irdl.dir/SpecPrinter.cpp.o" "gcc" "src/irdl/CMakeFiles/irdl_irdl.dir/SpecPrinter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/irdl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/irdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
