file(REMOVE_RECURSE
  "CMakeFiles/irdl_irdl.dir/Constraint.cpp.o"
  "CMakeFiles/irdl_irdl.dir/Constraint.cpp.o.d"
  "CMakeFiles/irdl_irdl.dir/CppExpr.cpp.o"
  "CMakeFiles/irdl_irdl.dir/CppExpr.cpp.o.d"
  "CMakeFiles/irdl_irdl.dir/Format.cpp.o"
  "CMakeFiles/irdl_irdl.dir/Format.cpp.o.d"
  "CMakeFiles/irdl_irdl.dir/IRDLLoader.cpp.o"
  "CMakeFiles/irdl_irdl.dir/IRDLLoader.cpp.o.d"
  "CMakeFiles/irdl_irdl.dir/IRDLParser.cpp.o"
  "CMakeFiles/irdl_irdl.dir/IRDLParser.cpp.o.d"
  "CMakeFiles/irdl_irdl.dir/Registration.cpp.o"
  "CMakeFiles/irdl_irdl.dir/Registration.cpp.o.d"
  "CMakeFiles/irdl_irdl.dir/Sema.cpp.o"
  "CMakeFiles/irdl_irdl.dir/Sema.cpp.o.d"
  "CMakeFiles/irdl_irdl.dir/Spec.cpp.o"
  "CMakeFiles/irdl_irdl.dir/Spec.cpp.o.d"
  "CMakeFiles/irdl_irdl.dir/SpecPrinter.cpp.o"
  "CMakeFiles/irdl_irdl.dir/SpecPrinter.cpp.o.d"
  "libirdl_irdl.a"
  "libirdl_irdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdl_irdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
