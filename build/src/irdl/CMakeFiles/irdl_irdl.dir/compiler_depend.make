# Empty compiler generated dependencies file for irdl_irdl.
# This may be replaced when dependencies are built.
