file(REMOVE_RECURSE
  "libirdl_irdl.a"
)
