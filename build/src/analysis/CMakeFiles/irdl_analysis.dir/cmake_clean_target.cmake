file(REMOVE_RECURSE
  "libirdl_analysis.a"
)
