file(REMOVE_RECURSE
  "CMakeFiles/irdl_analysis.dir/DialectStatistics.cpp.o"
  "CMakeFiles/irdl_analysis.dir/DialectStatistics.cpp.o.d"
  "CMakeFiles/irdl_analysis.dir/Render.cpp.o"
  "CMakeFiles/irdl_analysis.dir/Render.cpp.o.d"
  "libirdl_analysis.a"
  "libirdl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
