# Empty compiler generated dependencies file for irdl_analysis.
# This may be replaced when dependencies are built.
