file(REMOVE_RECURSE
  "CMakeFiles/corpus_tests.dir/corpus/CorpusRoundTripTest.cpp.o"
  "CMakeFiles/corpus_tests.dir/corpus/CorpusRoundTripTest.cpp.o.d"
  "CMakeFiles/corpus_tests.dir/corpus/CorpusTest.cpp.o"
  "CMakeFiles/corpus_tests.dir/corpus/CorpusTest.cpp.o.d"
  "corpus_tests"
  "corpus_tests.pdb"
  "corpus_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
