file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/support/CastingTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/CastingTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/DiagnosticsTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/DiagnosticsTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/IntrusiveListTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/IntrusiveListTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/SourceMgrTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/SourceMgrTest.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/StringExtrasTest.cpp.o"
  "CMakeFiles/support_tests.dir/support/StringExtrasTest.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
