
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/CastingTest.cpp" "tests/CMakeFiles/support_tests.dir/support/CastingTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/CastingTest.cpp.o.d"
  "/root/repo/tests/support/DiagnosticsTest.cpp" "tests/CMakeFiles/support_tests.dir/support/DiagnosticsTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/DiagnosticsTest.cpp.o.d"
  "/root/repo/tests/support/IntrusiveListTest.cpp" "tests/CMakeFiles/support_tests.dir/support/IntrusiveListTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/IntrusiveListTest.cpp.o.d"
  "/root/repo/tests/support/SourceMgrTest.cpp" "tests/CMakeFiles/support_tests.dir/support/SourceMgrTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/SourceMgrTest.cpp.o.d"
  "/root/repo/tests/support/StringExtrasTest.cpp" "tests/CMakeFiles/support_tests.dir/support/StringExtrasTest.cpp.o" "gcc" "tests/CMakeFiles/support_tests.dir/support/StringExtrasTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/irdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
