file(REMOVE_RECURSE
  "CMakeFiles/irdl_tests.dir/irdl/ConstraintPropertyTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/ConstraintPropertyTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/ConstraintTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/ConstraintTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/CppExprTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/CppExprTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/DialectFilesTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/DialectFilesTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/FormatTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/FormatTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/IRDLParserTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/IRDLParserTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/LoadTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/LoadTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/SegmentsTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/SegmentsTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/SemaErrorTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/SemaErrorTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/SemaTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/SemaTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/SpecPrinterTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/SpecPrinterTest.cpp.o.d"
  "CMakeFiles/irdl_tests.dir/irdl/UnificationTest.cpp.o"
  "CMakeFiles/irdl_tests.dir/irdl/UnificationTest.cpp.o.d"
  "irdl_tests"
  "irdl_tests.pdb"
  "irdl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
