# Empty compiler generated dependencies file for irdl_tests.
# This may be replaced when dependencies are built.
