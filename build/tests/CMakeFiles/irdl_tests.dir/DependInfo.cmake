
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/irdl/ConstraintPropertyTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/ConstraintPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/ConstraintPropertyTest.cpp.o.d"
  "/root/repo/tests/irdl/ConstraintTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/ConstraintTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/ConstraintTest.cpp.o.d"
  "/root/repo/tests/irdl/CppExprTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/CppExprTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/CppExprTest.cpp.o.d"
  "/root/repo/tests/irdl/DialectFilesTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/DialectFilesTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/DialectFilesTest.cpp.o.d"
  "/root/repo/tests/irdl/FormatTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/FormatTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/FormatTest.cpp.o.d"
  "/root/repo/tests/irdl/IRDLParserTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/IRDLParserTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/IRDLParserTest.cpp.o.d"
  "/root/repo/tests/irdl/LoadTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/LoadTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/LoadTest.cpp.o.d"
  "/root/repo/tests/irdl/SegmentsTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/SegmentsTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/SegmentsTest.cpp.o.d"
  "/root/repo/tests/irdl/SemaErrorTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/SemaErrorTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/SemaErrorTest.cpp.o.d"
  "/root/repo/tests/irdl/SemaTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/SemaTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/SemaTest.cpp.o.d"
  "/root/repo/tests/irdl/SpecPrinterTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/SpecPrinterTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/SpecPrinterTest.cpp.o.d"
  "/root/repo/tests/irdl/UnificationTest.cpp" "tests/CMakeFiles/irdl_tests.dir/irdl/UnificationTest.cpp.o" "gcc" "tests/CMakeFiles/irdl_tests.dir/irdl/UnificationTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/irdl/CMakeFiles/irdl_irdl.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/irdl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/irdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
