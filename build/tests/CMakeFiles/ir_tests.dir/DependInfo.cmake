
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ir/AttrTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/AttrTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/AttrTest.cpp.o.d"
  "/root/repo/tests/ir/BlockRegionTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/BlockRegionTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/BlockRegionTest.cpp.o.d"
  "/root/repo/tests/ir/BuilderTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/BuilderTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/BuilderTest.cpp.o.d"
  "/root/repo/tests/ir/BuiltinOpsTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/BuiltinOpsTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/BuiltinOpsTest.cpp.o.d"
  "/root/repo/tests/ir/CloningTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/CloningTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/CloningTest.cpp.o.d"
  "/root/repo/tests/ir/ContextTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/ContextTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/ContextTest.cpp.o.d"
  "/root/repo/tests/ir/DominanceEdgeTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/DominanceEdgeTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/DominanceEdgeTest.cpp.o.d"
  "/root/repo/tests/ir/IRLexerTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/IRLexerTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/IRLexerTest.cpp.o.d"
  "/root/repo/tests/ir/OperationTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/OperationTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/OperationTest.cpp.o.d"
  "/root/repo/tests/ir/ParamRoundTripTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/ParamRoundTripTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/ParamRoundTripTest.cpp.o.d"
  "/root/repo/tests/ir/ParserErrorTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/ParserErrorTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/ParserErrorTest.cpp.o.d"
  "/root/repo/tests/ir/ParserTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/ParserTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/ParserTest.cpp.o.d"
  "/root/repo/tests/ir/PassTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/PassTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/PassTest.cpp.o.d"
  "/root/repo/tests/ir/PrinterTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/PrinterTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/PrinterTest.cpp.o.d"
  "/root/repo/tests/ir/RandomRoundTripTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/RandomRoundTripTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/RandomRoundTripTest.cpp.o.d"
  "/root/repo/tests/ir/RewriteTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/RewriteTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/RewriteTest.cpp.o.d"
  "/root/repo/tests/ir/RoundTripTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/RoundTripTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/RoundTripTest.cpp.o.d"
  "/root/repo/tests/ir/TypeTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/TypeTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/TypeTest.cpp.o.d"
  "/root/repo/tests/ir/UseDefTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/UseDefTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/UseDefTest.cpp.o.d"
  "/root/repo/tests/ir/VerifierTest.cpp" "tests/CMakeFiles/ir_tests.dir/ir/VerifierTest.cpp.o" "gcc" "tests/CMakeFiles/ir_tests.dir/ir/VerifierTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/irdl_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/irdl_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
