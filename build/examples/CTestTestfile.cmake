# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cmath_opt "/root/repo/build/examples/cmath_opt")
set_tests_properties(example_cmath_opt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dialect_stats "/root/repo/build/examples/dialect_stats")
set_tests_properties(example_dialect_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_irdl_lint "/root/repo/build/examples/irdl_lint")
set_tests_properties(example_irdl_lint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_region_loops "/root/repo/build/examples/region_loops")
set_tests_properties(example_region_loops PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_irdl_doc "/root/repo/build/examples/irdl_doc")
set_tests_properties(example_irdl_doc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_irdl_opt "/root/repo/build/examples/irdl_opt" "--pass" "conorm" "--pass" "dce" "/root/repo/examples/testdata/conorm.mlir")
set_tests_properties(example_irdl_opt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
