file(REMOVE_RECURSE
  "CMakeFiles/irdl_doc.dir/irdl_doc.cpp.o"
  "CMakeFiles/irdl_doc.dir/irdl_doc.cpp.o.d"
  "irdl_doc"
  "irdl_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdl_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
