# Empty compiler generated dependencies file for irdl_doc.
# This may be replaced when dependencies are built.
