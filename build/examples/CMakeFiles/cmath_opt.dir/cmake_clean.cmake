file(REMOVE_RECURSE
  "CMakeFiles/cmath_opt.dir/cmath_opt.cpp.o"
  "CMakeFiles/cmath_opt.dir/cmath_opt.cpp.o.d"
  "cmath_opt"
  "cmath_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmath_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
