# Empty compiler generated dependencies file for cmath_opt.
# This may be replaced when dependencies are built.
