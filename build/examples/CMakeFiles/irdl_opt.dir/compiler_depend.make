# Empty compiler generated dependencies file for irdl_opt.
# This may be replaced when dependencies are built.
