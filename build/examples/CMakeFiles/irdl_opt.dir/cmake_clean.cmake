file(REMOVE_RECURSE
  "CMakeFiles/irdl_opt.dir/irdl_opt.cpp.o"
  "CMakeFiles/irdl_opt.dir/irdl_opt.cpp.o.d"
  "irdl_opt"
  "irdl_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdl_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
