# Empty compiler generated dependencies file for dialect_stats.
# This may be replaced when dependencies are built.
