file(REMOVE_RECURSE
  "CMakeFiles/dialect_stats.dir/dialect_stats.cpp.o"
  "CMakeFiles/dialect_stats.dir/dialect_stats.cpp.o.d"
  "dialect_stats"
  "dialect_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dialect_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
