file(REMOVE_RECURSE
  "CMakeFiles/irdl_lint.dir/irdl_lint.cpp.o"
  "CMakeFiles/irdl_lint.dir/irdl_lint.cpp.o.d"
  "irdl_lint"
  "irdl_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irdl_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
