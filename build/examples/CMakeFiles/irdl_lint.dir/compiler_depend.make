# Empty compiler generated dependencies file for irdl_lint.
# This may be replaced when dependencies are built.
