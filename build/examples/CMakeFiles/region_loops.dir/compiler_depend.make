# Empty compiler generated dependencies file for region_loops.
# This may be replaced when dependencies are built.
