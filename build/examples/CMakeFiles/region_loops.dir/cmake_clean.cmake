file(REMOVE_RECURSE
  "CMakeFiles/region_loops.dir/region_loops.cpp.o"
  "CMakeFiles/region_loops.dir/region_loops.cpp.o.d"
  "region_loops"
  "region_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
